package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/simdisk"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func ik(u string, seq uint64, kind keys.Kind) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), keys.Seq(seq), kind)
}

type pair struct {
	k keys.InternalKey
	v []byte
}

func numberedPairs(n int) []pair {
	out := make([]pair, n)
	for i := 0; i < n; i++ {
		out[i] = pair{
			k: ik(fmt.Sprintf("user%08d", i), uint64(1000+i), keys.KindSet),
			v: []byte(fmt.Sprintf("value-for-%08d", i)),
		}
	}
	return out
}

// buildTable writes pairs into a new file at the given base offset and
// opens a reader over it.
func buildTable(t testing.TB, fs vfs.FS, name string, base int64, pairs []pair, cfg Config) (*Reader, TableInfo) {
	t.Helper()
	var f vfs.File
	var err error
	if base == 0 {
		f, err = fs.Create(name)
	} else {
		f, err = fs.Open(name)
		if err != nil {
			f, err = fs.Create(name)
		} else {
			f.Close()
			t.Fatal("buildTable with base>0 requires appendTable")
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, base, cfg)
	for _, p := range pairs {
		if err := w.Add(p.k, p.v); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(rf, 1, 1, info.Base, info.Size, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r, info
}

func TestRoundTripIterate(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(1000)
	r, info := buildTable(t, fs, "t1", 0, pairs, Config{})
	if info.NumEntries != 1000 {
		t.Fatalf("NumEntries = %d", info.NumEntries)
	}
	if string(info.Smallest.UserKey()) != "user00000000" || string(info.Largest.UserKey()) != "user00000999" {
		t.Fatalf("bounds = %v %v", info.Smallest, info.Largest)
	}
	it := r.NewIter(IterOpts{})
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if keys.Compare(it.Key(), pairs[i].k) != 0 || !bytes.Equal(it.Value(), pairs[i].v) {
			t.Fatalf("entry %d mismatch: %v", i, it.Key())
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(pairs) {
		t.Fatalf("iterated %d, want %d", i, len(pairs))
	}
}

func TestGet(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(500)
	r, _ := buildTable(t, fs, "t1", 0, pairs, Config{})
	for i := 0; i < 500; i += 17 {
		u := fmt.Sprintf("user%08d", i)
		v, _, kind, found, err := r.Get(keys.MakeInternalKey(nil, []byte(u), keys.MaxSeq, keys.KindSeekMax))
		if err != nil || !found {
			t.Fatalf("Get(%s) = found=%v err=%v", u, found, err)
		}
		if kind != keys.KindSet || string(v) != fmt.Sprintf("value-for-%08d", i) {
			t.Fatalf("Get(%s) = %q kind=%v", u, v, kind)
		}
	}
	// Absent keys.
	for _, u := range []string{"user99999999", "aaaa", "user00000010x"} {
		_, _, _, found, err := r.Get(keys.MakeInternalKey(nil, []byte(u), keys.MaxSeq, keys.KindSeekMax))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("Get(%s) found a phantom", u)
		}
	}
}

func TestGetHonorsSnapshotSeq(t *testing.T) {
	fs := vfs.NewMem()
	ps := []pair{
		{k: ik("k", 20, keys.KindSet), v: []byte("v20")},
		{k: ik("k", 10, keys.KindDelete), v: nil},
		{k: ik("k", 5, keys.KindSet), v: []byte("v5")},
	}
	r, _ := buildTable(t, fs, "t1", 0, ps, Config{})
	v, gotSeq, kind, found, err := r.Get(keys.MakeInternalKey(nil, []byte("k"), 15, keys.KindSeekMax))
	if err != nil || !found || kind != keys.KindDelete || gotSeq != 10 {
		t.Fatalf("seq15: v=%q seq=%d kind=%v found=%v err=%v", v, gotSeq, kind, found, err)
	}
	v, gotSeq, kind, found, err = r.Get(keys.MakeInternalKey(nil, []byte("k"), 7, keys.KindSeekMax))
	if err != nil || !found || kind != keys.KindSet || string(v) != "v5" || gotSeq != 5 {
		t.Fatalf("seq7: v=%q seq=%d kind=%v found=%v err=%v", v, gotSeq, kind, found, err)
	}
}

func TestLogicalTablesShareFile(t *testing.T) {
	// Three logical tables in one physical file — the BoLT layout.
	fs := vfs.NewMem()
	f, err := fs.Create("compaction-file")
	if err != nil {
		t.Fatal(err)
	}
	var infos []TableInfo
	var allPairs [][]pair
	base := int64(0)
	for part := 0; part < 3; part++ {
		var ps []pair
		for i := 0; i < 200; i++ {
			ps = append(ps, pair{
				k: ik(fmt.Sprintf("p%d-%05d", part, i), uint64(i+1), keys.KindSet),
				v: []byte(fmt.Sprintf("val-%d-%d", part, i)),
			})
		}
		w := NewWriter(f, base, Config{})
		for _, p := range ps {
			if err := w.Add(p.k, p.v); err != nil {
				t.Fatal(err)
			}
		}
		info, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if info.Base != base {
			t.Fatalf("part %d base = %d, want %d", part, info.Base, base)
		}
		base += info.Size
		infos = append(infos, info)
		allPairs = append(allPairs, ps)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := fs.Open("compaction-file")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	for part, info := range infos {
		r, err := OpenReader(rf, uint64(part+1), 1, info.Base, info.Size, nil)
		if err != nil {
			t.Fatalf("open logical table %d: %v", part, err)
		}
		it := r.NewIter(IterOpts{})
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			want := allPairs[part][i]
			if keys.Compare(it.Key(), want.k) != 0 || !bytes.Equal(it.Value(), want.v) {
				t.Fatalf("logical table %d entry %d mismatch", part, i)
			}
			i++
		}
		if i != len(allPairs[part]) || it.Err() != nil {
			t.Fatalf("logical table %d: %d entries err=%v", part, i, it.Err())
		}
		it.Close()
	}
}

func TestHolePunchedNeighborDoesNotAffectTable(t *testing.T) {
	// Punch a hole over the first logical table; the second must stay intact.
	fs := vfs.NewMem()
	f, _ := fs.Create("cf")
	w1 := NewWriter(f, 0, Config{})
	for i := 0; i < 100; i++ {
		w1.Add(ik(fmt.Sprintf("a%04d", i), 1, keys.KindSet), []byte("dead"))
	}
	info1, err := w1.Finish()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(f, info1.Size, Config{})
	for i := 0; i < 100; i++ {
		w2.Add(ik(fmt.Sprintf("b%04d", i), 1, keys.KindSet), []byte("alive"))
	}
	info2, err := w2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Sync()
	if err := f.PunchHole(0, info1.Size); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, _ := fs.Open("cf")
	defer rf.Close()
	r, err := OpenReader(rf, 2, 1, info2.Base, info2.Size, nil)
	if err != nil {
		t.Fatalf("open survivor after hole punch: %v", err)
	}
	it := r.NewIter(IterOpts{})
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Value()) != "alive" {
			t.Fatalf("corrupted value %q", it.Value())
		}
		n++
	}
	if n != 100 || it.Err() != nil {
		t.Fatalf("survivor: %d entries err=%v", n, it.Err())
	}
	// The punched table must now fail its checksum (reads as zeros).
	if _, err := OpenReader(rf, 1, 1, 0, info1.Size, nil); err == nil {
		t.Fatal("punched table should not open cleanly")
	}
}

func TestSeek(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(300)
	r, _ := buildTable(t, fs, "t", 0, pairs, Config{BlockSize: 512})
	it := r.NewIter(IterOpts{})
	defer it.Close()
	// Seek to every 13th key and verify landing plus subsequent order.
	for i := 0; i < 300; i += 13 {
		target := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("user%08d", i)), keys.MaxSeq, keys.KindSeekMax)
		if !it.Seek(target) {
			t.Fatalf("Seek(%d) invalid", i)
		}
		if got := string(it.Key().UserKey()); got != fmt.Sprintf("user%08d", i) {
			t.Fatalf("Seek(%d) landed on %s", i, got)
		}
	}
	if it.Seek(ik("zzzz", 1, keys.KindSet)) {
		t.Fatal("seek past end should invalidate")
	}
}

func TestReadaheadIterMatchesNormalIter(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.AccountingProfile())
	fs := vfs.NewSim(dev)
	pairs := numberedPairs(2000)
	r, _ := buildTable(t, fs, "t", 0, pairs, Config{})

	before := dev.Stats().Reads
	it := r.NewIter(IterOpts{Readahead: 512 << 10})
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if keys.Compare(it.Key(), pairs[n].k) != 0 {
			t.Fatalf("readahead iter mismatch at %d", n)
		}
		n++
	}
	it.Close()
	if n != len(pairs) || it.Err() != nil {
		t.Fatalf("readahead iter: %d entries err=%v", n, it.Err())
	}
	raReads := dev.Stats().Reads - before

	before = dev.Stats().Reads
	it2 := r.NewIter(IterOpts{})
	for ok := it2.First(); ok; ok = it2.Next() {
	}
	it2.Close()
	blockReads := dev.Stats().Reads - before

	if raReads*4 > blockReads {
		t.Fatalf("readahead should drastically cut device reads: %d vs %d", raReads, blockReads)
	}
}

func TestBloomFilterSkipsDeviceReads(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.AccountingProfile())
	fs := vfs.NewSim(dev)
	pairs := numberedPairs(1000)
	r, _ := buildTable(t, fs, "t", 0, pairs, Config{})
	before := dev.Stats().Reads
	misses := 0
	for i := 0; i < 1000; i++ {
		u := fmt.Sprintf("absent%08d", i)
		_, _, _, found, err := r.Get(keys.MakeInternalKey(nil, []byte(u), keys.MaxSeq, keys.KindSeekMax))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			misses++
		}
	}
	reads := dev.Stats().Reads - before
	if misses < 950 {
		t.Fatalf("only %d misses", misses)
	}
	// Without a bloom filter every absent get would read a data block.
	if reads > 100 {
		t.Fatalf("bloom filter ineffective: %d device reads for 1000 absent gets", reads)
	}
}

func TestNoBloomConfig(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(10)
	r, _ := buildTable(t, fs, "t", 0, pairs, Config{BloomBitsPerKey: -1})
	if !r.MayContain([]byte("anything")) {
		t.Fatal("filterless table must not reject keys")
	}
	_, _, _, found, err := r.Get(keys.MakeInternalKey(nil, []byte("user00000003"), keys.MaxSeq, keys.KindSeekMax))
	if err != nil || !found {
		t.Fatalf("Get without bloom: found=%v err=%v", found, err)
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(10)
	_, info := buildTable(t, fs, "t", 0, pairs, Config{})
	data, _ := vfs.ReadWholeFile(fs, "t")
	data[len(data)-1] ^= 0xff // clobber magic
	vfs.WriteFile(fs, "bad", data)
	f, _ := fs.Open("bad")
	defer f.Close()
	if _, err := OpenReader(f, 1, 1, 0, info.Size, nil); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestCorruptDataBlockDetected(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(100)
	_, info := buildTable(t, fs, "t", 0, pairs, Config{})
	data, _ := vfs.ReadWholeFile(fs, "t")
	data[10] ^= 0xff // flip a byte inside the first data block
	vfs.WriteFile(fs, "bad", data)
	f, _ := fs.Open("bad")
	defer f.Close()
	r, err := OpenReader(f, 1, 1, 0, info.Size, nil)
	if err != nil {
		t.Fatal(err) // meta region is intact
	}
	it := r.NewIter(IterOpts{})
	defer it.Close()
	if it.First() {
		// First block is corrupt; iteration must fail, not return garbage.
		t.Fatal("corrupt data block iterated successfully")
	}
	if it.Err() == nil {
		t.Fatal("corrupt block produced no error")
	}
}

type countingCache struct {
	m       map[string][]byte
	hits    int
	inserts int
}

func (c *countingCache) Get(id uint64, off int64) ([]byte, bool) {
	v, ok := c.m[fmt.Sprint(id, ":", off)]
	if ok {
		c.hits++
	}
	return v, ok
}
func (c *countingCache) Insert(id uint64, off int64, data []byte) {
	c.inserts++
	c.m[fmt.Sprint(id, ":", off)] = data
}

func TestBlockCacheUsed(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(100)
	_, info := buildTable(t, fs, "t", 0, pairs, Config{})
	f, _ := fs.Open("t")
	defer f.Close()
	cc := &countingCache{m: map[string][]byte{}}
	r, err := OpenReader(f, 1, 1, 0, info.Size, cc)
	if err != nil {
		t.Fatal(err)
	}
	target := keys.MakeInternalKey(nil, []byte("user00000050"), keys.MaxSeq, keys.KindSeekMax)
	r.Get(target)
	r.Get(target)
	if cc.inserts == 0 || cc.hits == 0 {
		t.Fatalf("cache unused: inserts=%d hits=%d", cc.inserts, cc.hits)
	}
}

// TestGetValueDoesNotAliasCache pins the BlockCache ownership rule at
// the reader boundary: Get must return a copy, so a caller mutating its
// result cannot corrupt the cached block that later hits share.
func TestGetValueDoesNotAliasCache(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(100)
	_, info := buildTable(t, fs, "t", 0, pairs, Config{})
	f, _ := fs.Open("t")
	defer f.Close()
	cc := &countingCache{m: map[string][]byte{}}
	r, err := OpenReader(f, 1, 1, 0, info.Size, cc)
	if err != nil {
		t.Fatal(err)
	}
	target := keys.MakeInternalKey(nil, []byte("user00000050"), keys.MaxSeq, keys.KindSeekMax)
	v1, _, _, found, err := r.Get(target)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	want := string(v1)
	for i := range v1 {
		v1[i] = 'X'
	}
	v2, _, _, found, err := r.Get(target) // cache hit on the same block
	if err != nil || !found {
		t.Fatalf("Get (hit): found=%v err=%v", found, err)
	}
	if string(v2) != want {
		t.Fatalf("mutating Get's result corrupted the cached block: got %q, want %q", v2, want)
	}
	if cc.hits == 0 {
		t.Fatal("second Get did not hit the cache; test proved nothing")
	}
}

func TestMetaSizeGrowsWithTableSize(t *testing.T) {
	fs := vfs.NewMem()
	_, small := buildTable(t, fs, "small", 0, numberedPairs(100), Config{})
	_, large := buildTable(t, fs, "large", 0, numberedPairs(5000), Config{})
	if large.MetaSize <= small.MetaSize {
		t.Fatalf("meta size should grow with table size: %d vs %d", large.MetaSize, small.MetaSize)
	}
}

// Property: random sorted unique keysets round-trip through a table.
func TestRoundTripProperty(t *testing.T) {
	f := func(rawKeys [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		uniq := map[string][]byte{}
		for _, k := range rawKeys {
			if len(k) == 0 {
				continue
			}
			v := make([]byte, rng.Intn(128))
			rng.Read(v)
			uniq[string(k)] = v
		}
		var sorted []string
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		if len(sorted) == 0 {
			return true
		}

		fs := vfs.NewMem()
		file, _ := fs.Create("t")
		w := NewWriter(file, 0, Config{BlockSize: 256})
		for i, k := range sorted {
			if err := w.Add(ik(k, uint64(i+1), keys.KindSet), uniq[k]); err != nil {
				return false
			}
		}
		info, err := w.Finish()
		if err != nil {
			return false
		}
		file.Close()
		rf, _ := fs.Open("t")
		defer rf.Close()
		r, err := OpenReader(rf, 1, 1, 0, info.Size, nil)
		if err != nil {
			return false
		}
		it := r.NewIter(IterOpts{})
		defer it.Close()
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key().UserKey()) != sorted[i] || !bytes.Equal(it.Value(), uniq[sorted[i]]) {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableGet(b *testing.B) {
	fs := vfs.NewMem()
	pairs := numberedPairs(10000)
	r, _ := buildTable(b, fs, "t", 0, pairs, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := fmt.Sprintf("user%08d", i%10000)
		r.Get(keys.MakeInternalKey(nil, []byte(u), keys.MaxSeq, keys.KindSeekMax))
	}
}

func BenchmarkTableBuild(b *testing.B) {
	fs := vfs.NewMem()
	pairs := numberedPairs(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := fs.Create("t")
		w := NewWriter(f, 0, Config{})
		for _, p := range pairs {
			w.Add(p.k, p.v)
		}
		w.Finish()
		f.Close()
	}
}
