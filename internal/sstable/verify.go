package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bolt-lsm/bolt/internal/block"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// Size returns the table's total length in bytes, footer included — the
// scrubber's pacing unit.
func (r *Reader) Size() int64 { return r.size }

// VerifyTable re-reads the whole table straight from the file — bypassing
// the block cache, which may hold copies read before the rot — and checks
// everything the format promises: footer magic, filter and index block
// checksums, every data block's checksum and restart structure, strict
// internal-key ordering across all entries, and the footer entry count.
// It is the scrubber's unit of work and bolt-dump -verify's engine. The
// first finding is returned as a *CorruptionError; I/O failures surface
// as ordinary errors.
func (r *Reader) VerifyTable() error {
	// Footer. The open-time copy is not trusted: the bytes may have rotted
	// since.
	var footer [FooterSize]byte
	if err := vfs.ReadFull(r.f, footer[:], r.base+r.size-FooterSize); err != nil {
		return fmt.Errorf("sstable: read footer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(footer[40:]); got != Magic {
		return r.corruptf(r.base+r.size-FooterSize, nil, "bad magic %#x", got)
	}
	indexH := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[0:])),
		length: int64(binary.LittleEndian.Uint64(footer[8:])),
	}
	filterH := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[16:])),
		length: int64(binary.LittleEndian.Uint64(footer[24:])),
	}
	numEntries := int(binary.LittleEndian.Uint64(footer[32:]))

	// Meta blocks (filter, then index), re-read and re-checksummed.
	if filterH.length > 0 {
		if err := r.checkHandle(filterH); err != nil {
			return err
		}
		if _, err := r.readBlockDirect(filterH); err != nil {
			return err
		}
	}
	if err := r.checkHandle(indexH); err != nil {
		return err
	}
	indexData, err := r.readBlockDirect(indexH)
	if err != nil {
		return err
	}
	index, err := block.NewReader(indexData)
	if err != nil {
		return r.corruptf(r.base+indexH.offset, err, "parse index")
	}

	// Data blocks: checksum, restart structure, entry decode, and global
	// key ordering.
	var prev keys.InternalKey
	count := 0
	idx := index.Iter()
	for ok := idx.First(); ok; ok = idx.Next() {
		h, err := decodeHandle(idx.Value())
		if err != nil {
			return r.corruptf(-1, err, "index entry handle")
		}
		if err := r.checkHandle(h); err != nil {
			return err
		}
		data, err := r.readBlockDirect(h)
		if err != nil {
			return err
		}
		br, err := block.NewReader(data)
		if err != nil {
			return r.corruptf(r.base+h.offset, err, "parse data block")
		}
		it := br.Iter()
		for ok := it.First(); ok; ok = it.Next() {
			if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
				return r.corruptf(r.base+h.offset, nil, "key order violation")
			}
			prev = append(prev[:0], it.Key()...)
			count++
		}
		if err := it.Err(); err != nil {
			return r.corruptf(r.base+h.offset, err, "data block entry")
		}
	}
	if err := idx.Err(); err != nil {
		return r.corruptf(r.base+indexH.offset, err, "index iteration")
	}
	if count != numEntries {
		return r.corruptf(r.base+r.size-FooterSize, nil,
			"entry count %d, footer says %d", count, numEntries)
	}
	return nil
}

// Salvage walks the table's data blocks straight from the file (no cache)
// and emits, in key order, every entry from blocks that still checksum and
// decode — the recoverable remainder of a quarantined table. Blocks that
// fail their checksum, fail to parse, or break key ordering are skipped
// whole (a block whose tail fails mid-decode loses the whole block too:
// prefix compression makes a partial decode untrustworthy). The return
// counts skipped blocks; a non-nil error is an emit or I/O failure, never
// a corruption finding — corruption is what Salvage exists to absorb.
func (r *Reader) Salvage(emit func(key keys.InternalKey, value []byte) error) (skipped int, err error) {
	var prev keys.InternalKey
	idx := r.index.Iter()
	for ok := idx.First(); ok; ok = idx.Next() {
		h, err := decodeHandle(idx.Value())
		if err != nil {
			skipped++
			continue
		}
		if err := r.checkHandle(h); err != nil {
			skipped++
			continue
		}
		data, err := r.readBlockDirect(h)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				skipped++
				continue
			}
			return skipped, err
		}
		br, err := block.NewReader(data)
		if err != nil {
			skipped++
			continue
		}
		// Decode the whole block before emitting anything: a block that
		// goes bad halfway is dropped in full.
		var blkKeys []keys.InternalKey
		var blkVals [][]byte
		good := true
		last := prev
		it := br.Iter()
		for ok := it.First(); ok; ok = it.Next() {
			if last != nil && keys.Compare(last, it.Key()) >= 0 {
				good = false
				break
			}
			k := append(keys.InternalKey(nil), it.Key()...)
			blkKeys = append(blkKeys, k)
			blkVals = append(blkVals, append([]byte(nil), it.Value()...))
			last = k
		}
		if !good || it.Err() != nil || len(blkKeys) == 0 {
			skipped++
			continue
		}
		for i, k := range blkKeys {
			if err := emit(k, blkVals[i]); err != nil {
				return skipped, err
			}
		}
		prev = last
	}
	if err := idx.Err(); err != nil {
		// A rotted in-memory index cannot happen (it was checksummed at
		// open); treat iteration failure as losing the remainder.
		skipped++
	}
	return skipped, nil
}
