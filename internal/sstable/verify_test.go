package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// tableRegions locates every structurally distinct byte region of a built
// table, parsed from the at-rest footer so the offsets stay honest as the
// format evolves.
type tableRegions struct {
	dataOff   int64 // first byte of the first data block
	filterOff int64
	indexOff  int64
	countOff  int64 // footer entry-count field
	magicOff  int64 // footer magic field
}

func regionsOf(t *testing.T, fs *vfs.MemFS, name string, info TableInfo) tableRegions {
	t.Helper()
	data, err := vfs.ReadWholeFile(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	footer := data[info.Base+info.Size-FooterSize:]
	return tableRegions{
		dataOff:   info.Base,
		indexOff:  int64(binary.LittleEndian.Uint64(footer[0:])),
		filterOff: int64(binary.LittleEndian.Uint64(footer[16:])),
		countOff:  info.Base + info.Size - FooterSize + 32,
		magicOff:  info.Base + info.Size - FooterSize + 40,
	}
}

// TestVerifyTableDetectsRegionRot flips bytes in each structurally distinct
// region of a table and asserts VerifyTable reports the rot as a
// *CorruptionError carrying the reader's identity — never a clean pass,
// never an untyped error.
func TestVerifyTableDetectsRegionRot(t *testing.T) {
	cases := []struct {
		name string
		off  func(r tableRegions) int64
	}{
		{"data-block", func(r tableRegions) int64 { return r.dataOff + 3 }},
		{"filter-block", func(r tableRegions) int64 { return r.filterOff + 1 }},
		{"index-block", func(r tableRegions) int64 { return r.indexOff + 1 }},
		{"footer-handle", func(r tableRegions) int64 { return r.countOff - 32 }},
		{"footer-count", func(r tableRegions) int64 { return r.countOff }},
		{"footer-magic", func(r tableRegions) int64 { return r.magicOff + 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := vfs.NewMem()
			r, info := buildTable(t, fs, "t", 0, numberedPairs(500), Config{})
			if err := r.VerifyTable(); err != nil {
				t.Fatalf("clean table failed verify: %v", err)
			}
			// Rot the region at rest, after open: VerifyTable must re-read
			// from the file rather than trust open-time state.
			if err := fs.CorruptFileRange("t", tc.off(regionsOf(t, fs, "t", info)), 1); err != nil {
				t.Fatal(err)
			}
			err := r.VerifyTable()
			if err == nil {
				t.Fatal("rot not detected")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("finding does not classify as corruption: %v", err)
			}
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("finding is not a *CorruptionError: %v", err)
			}
			if ce.TableID != 1 || ce.PhysNum != 1 {
				t.Fatalf("finding misattributed: table %d phys %d, want 1/1 (%v)", ce.TableID, ce.PhysNum, err)
			}
		})
	}
}

func TestVerifyTableLocalizesDataBlockRot(t *testing.T) {
	fs := vfs.NewMem()
	r, info := buildTable(t, fs, "t", 0, numberedPairs(2000), Config{BlockSize: 512})
	// Rot a byte well past the first block; the finding's offset must point
	// into the damaged block, not at the table head.
	rot := info.Base + info.Size/2
	if err := fs.CorruptFileRange("t", rot, 1); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptionError
	if err := r.VerifyTable(); !errors.As(err, &ce) {
		t.Fatalf("VerifyTable = %v", err)
	}
	if ce.Offset < 0 || ce.Offset > rot || rot-ce.Offset > 512+blockTrailerSize+64 {
		t.Fatalf("finding at offset %d, rot at %d: not localized to the damaged block", ce.Offset, rot)
	}
}

func TestVerifyTableDetectsKeyOrderViolation(t *testing.T) {
	fs := vfs.NewMem()
	// Two single-entry blocks whose keys differ in one byte: flipping that
	// byte in the second block's key reverses the global order while both
	// blocks still parse. Checksums catch it first, so this guards the
	// ordering check only in formats without per-block trailers — here it
	// documents that rot inside a key never escapes as reordered entries.
	r, info := buildTable(t, fs, "t", 0, numberedPairs(3000), Config{BlockSize: 256})
	if err := fs.CorruptFileRange("t", info.Base+600, 8); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyTable(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyTable = %v, want corruption", err)
	}
}

func TestSalvageEmitsSurvivingBlocksInOrder(t *testing.T) {
	fs := vfs.NewMem()
	pairs := numberedPairs(2000)
	r, info := buildTable(t, fs, "t", 0, pairs, Config{BlockSize: 512})
	// Rot one data block in the middle of the table.
	if err := fs.CorruptFileRange("t", info.Base+info.Size/2, 1); err != nil {
		t.Fatal(err)
	}
	var got []pair
	var prev keys.InternalKey
	skipped, err := r.Salvage(func(k keys.InternalKey, v []byte) error {
		if prev != nil && keys.Compare(prev, k) >= 0 {
			t.Fatalf("salvage emitted out of order at %v", k)
		}
		prev = append(prev[:0], k...)
		got = append(got, pair{k: append(keys.InternalKey(nil), k...), v: append([]byte(nil), v...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d blocks, want 1", skipped)
	}
	if len(got) == 0 || len(got) >= len(pairs) {
		t.Fatalf("salvaged %d of %d entries, want all but one block", len(got), len(pairs))
	}
	// Every surviving entry matches what was written (no silent rewrites),
	// and the loss is one contiguous run of keys (one block).
	idx := make(map[string]string, len(pairs))
	for _, p := range pairs {
		idx[string(p.k)] = string(p.v)
	}
	for _, g := range got {
		if idx[string(g.k)] != string(g.v) {
			t.Fatalf("salvaged entry %v has wrong value", g.k)
		}
	}
	lost := len(pairs) - len(got)
	runs, inRun := 0, false
	have := make(map[string]bool, len(got))
	for _, g := range got {
		have[string(g.k)] = true
	}
	for _, p := range pairs {
		if !have[string(p.k)] {
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs != 1 {
		t.Fatalf("lost %d entries in %d runs, want one contiguous block", lost, runs)
	}
}

func TestSalvageErrorPropagation(t *testing.T) {
	fs := vfs.NewMem()
	r, _ := buildTable(t, fs, "t", 0, numberedPairs(100), Config{})
	want := fmt.Errorf("sink full")
	if _, err := r.Salvage(func(keys.InternalKey, []byte) error { return want }); !errors.Is(err, want) {
		t.Fatalf("Salvage = %v, want emit error to propagate", err)
	}
}
