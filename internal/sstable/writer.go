// Package sstable implements the on-disk sorted table format. A table is a
// sequence of prefix-compressed data blocks followed by a Bloom filter
// block, an index block, and a fixed-size footer.
//
// Crucially for BoLT, a table is addressed by a byte range — (base offset,
// size) within a physical file — not by a whole file. A *logical SSTable*
// is simply a table whose base offset is non-zero: several of them share
// one compaction file, and every internal offset (block handles, footer
// fields) is relative to the table base. Legacy mode stores exactly one
// table per file at offset zero; the same reader handles both.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/bolt-lsm/bolt/internal/block"
	"github.com/bolt-lsm/bolt/internal/bloom"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// Magic identifies a table footer.
const Magic = 0xb017_57ab_1e00_0001

// FooterSize is the fixed footer length.
const FooterSize = 48

// blockTrailerSize is the per-block CRC32 trailer length.
const blockTrailerSize = 4

// ErrCorrupt reports a malformed table.
var ErrCorrupt = errors.New("sstable: corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config controls table construction.
type Config struct {
	// BlockSize is the uncompressed data block size target (default 4 KiB).
	BlockSize int
	// RestartInterval is the block restart interval (default 16).
	RestartInterval int
	// EntryPadding adds dead bytes per entry, modelling a less compact
	// record format (see package block).
	EntryPadding int
	// BloomBitsPerKey configures the filter block; 0 selects the default
	// (10, as in the paper), negative disables the filter.
	BloomBitsPerKey int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.RestartInterval <= 0 {
		c.RestartInterval = block.DefaultRestartInterval
	}
	if c.BloomBitsPerKey == 0 {
		c.BloomBitsPerKey = bloom.DefaultBitsPerKey
	}
	return c
}

// TableInfo describes a finished table.
type TableInfo struct {
	// Base is the table's starting offset within the physical file.
	Base int64
	// Size is the table's total length in bytes, footer included.
	Size int64
	// Smallest and Largest are the first and last internal keys.
	Smallest, Largest keys.InternalKey
	// NumEntries is the number of entries.
	NumEntries int
	// MetaSize is the combined filter+index size in bytes — the cost of a
	// TableCache miss.
	MetaSize int64
}

// Writer builds one table, appending to f starting at offset base (which
// must equal f's current size). The writer never calls Sync: the caller
// owns barrier placement, which is the entire point of BoLT.
type Writer struct {
	f    vfs.File
	base int64
	cfg  Config

	offset    int64 // bytes written so far, relative to base
	dataBlock *block.Builder
	indexB    *block.Builder

	// pendingIndex holds the handle of the last finished data block; its
	// index entry is emitted once the next key is known (for a short
	// separator) or at Finish.
	pendingIndex  bool
	pendingHandle blockHandle
	lastKey       []byte

	userKeys   [][]byte
	smallest   keys.InternalKey
	numEntries int
	finished   bool
}

type blockHandle struct {
	offset int64 // relative to table base
	length int64 // without trailer
}

func (h blockHandle) encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.offset))
	return binary.AppendUvarint(dst, uint64(h.length))
}

func decodeHandle(data []byte) (blockHandle, error) {
	off, n := binary.Uvarint(data)
	if n <= 0 {
		return blockHandle{}, fmt.Errorf("%w: bad handle offset", ErrCorrupt)
	}
	length, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return blockHandle{}, fmt.Errorf("%w: bad handle length", ErrCorrupt)
	}
	return blockHandle{offset: int64(off), length: int64(length)}, nil
}

// NewWriter starts a table at f's offset base.
func NewWriter(f vfs.File, base int64, cfg Config) *Writer {
	cfg = cfg.withDefaults()
	return &Writer{
		f:         f,
		base:      base,
		cfg:       cfg,
		dataBlock: block.NewBuilder(cfg.RestartInterval, cfg.EntryPadding),
		indexB:    block.NewBuilder(1, 0),
	}
}

// Add appends an entry; keys must arrive in strictly increasing internal
// key order.
func (w *Writer) Add(key keys.InternalKey, value []byte) error {
	if w.finished {
		return errors.New("sstable: Add after Finish")
	}
	if w.pendingIndex {
		// Emit a shortened separator between the previous block's last key
		// and this key.
		sep := keys.Separator(nil, keys.InternalKey(w.lastKey), key)
		w.indexB.Add(sep, w.pendingHandle.encode(nil))
		w.pendingIndex = false
	}
	if w.numEntries == 0 {
		w.smallest = append(keys.InternalKey(nil), key...)
	}
	w.lastKey = append(w.lastKey[:0], key...)
	w.numEntries++
	if w.cfg.BloomBitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), key.UserKey()...))
	}
	w.dataBlock.Add(key, value)
	if w.dataBlock.EstimatedSize() >= w.cfg.BlockSize {
		return w.flushDataBlock()
	}
	return nil
}

func (w *Writer) flushDataBlock() error {
	if w.dataBlock.Empty() {
		return nil
	}
	handle, err := w.writeBlock(w.dataBlock.Finish())
	if err != nil {
		return err
	}
	w.dataBlock.Reset()
	w.pendingHandle = handle
	w.pendingIndex = true
	return nil
}

// writeBlock appends data plus its CRC trailer and returns its handle.
func (w *Writer) writeBlock(data []byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: int64(len(data))}
	if _, err := w.f.Write(data); err != nil {
		return blockHandle{}, fmt.Errorf("sstable: write block: %w", err)
	}
	var trailer [blockTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(data, castagnoli))
	if _, err := w.f.Write(trailer[:]); err != nil {
		return blockHandle{}, fmt.Errorf("sstable: write trailer: %w", err)
	}
	w.offset += int64(len(data)) + blockTrailerSize
	return h, nil
}

// EstimatedSize returns the table size if Finish were called now, ignoring
// filter/index overhead. Used to decide when to cut a table.
func (w *Writer) EstimatedSize() int64 {
	return w.offset + int64(w.dataBlock.EstimatedSize())
}

// NumEntries returns the number of entries added so far.
func (w *Writer) NumEntries() int { return w.numEntries }

// Empty reports whether nothing has been added.
func (w *Writer) Empty() bool { return w.numEntries == 0 }

// Finish writes the filter block, index block, and footer, returning the
// table's description. It does not sync.
func (w *Writer) Finish() (TableInfo, error) {
	if w.finished {
		return TableInfo{}, errors.New("sstable: double Finish")
	}
	w.finished = true
	if err := w.flushDataBlock(); err != nil {
		return TableInfo{}, err
	}
	if w.pendingIndex {
		succ := keys.Successor(nil, keys.InternalKey(w.lastKey))
		w.indexB.Add(succ, w.pendingHandle.encode(nil))
		w.pendingIndex = false
	}

	var filterHandle blockHandle
	if w.cfg.BloomBitsPerKey > 0 {
		filter := bloom.Build(w.userKeys, w.cfg.BloomBitsPerKey)
		var err error
		filterHandle, err = w.writeBlock(filter)
		if err != nil {
			return TableInfo{}, err
		}
	}
	indexHandle, err := w.writeBlock(w.indexB.Finish())
	if err != nil {
		return TableInfo{}, err
	}

	var footer [FooterSize]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexHandle.offset))
	binary.LittleEndian.PutUint64(footer[8:], uint64(indexHandle.length))
	binary.LittleEndian.PutUint64(footer[16:], uint64(filterHandle.offset))
	binary.LittleEndian.PutUint64(footer[24:], uint64(filterHandle.length))
	binary.LittleEndian.PutUint64(footer[32:], uint64(w.numEntries))
	binary.LittleEndian.PutUint64(footer[40:], Magic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return TableInfo{}, fmt.Errorf("sstable: write footer: %w", err)
	}
	w.offset += FooterSize

	metaSize := int64(FooterSize) + indexHandle.length + blockTrailerSize
	if filterHandle.length > 0 {
		metaSize += filterHandle.length + blockTrailerSize
	}
	return TableInfo{
		Base:       w.base,
		Size:       w.offset,
		Smallest:   w.smallest,
		Largest:    append(keys.InternalKey(nil), w.lastKey...),
		NumEntries: w.numEntries,
		MetaSize:   metaSize,
	}, nil
}
