package vfs

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Op labels an injectable operation site on an ErrorFS. The set mirrors
// every place the engine touches storage: file creation, appends, random
// reads, data barriers, directory barriers, renames, unlinks, and hole
// punches.
type Op uint8

// The injectable operation sites.
const (
	OpCreate Op = iota
	OpWrite
	OpReadAt
	OpSync
	OpSyncDir
	OpRename
	OpRemove
	OpPunchHole
	numOps
)

var opNames = [numOps]string{
	OpCreate:    "Create",
	OpWrite:     "Write",
	OpReadAt:    "ReadAt",
	OpSync:      "Sync",
	OpSyncDir:   "SyncDir",
	OpRename:    "Rename",
	OpRemove:    "Remove",
	OpPunchHole: "PunchHole",
}

// String names the operation.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", op)
}

// InjectedError is the fault an ErrorFS injector returns. Permanent faults
// model broken hardware (every retry fails the same way); transient faults
// model recoverable conditions such as a momentary I/O hiccup.
type InjectedError struct {
	Op        Op
	Name      string
	Permanent bool
}

// Error describes the fault.
func (e *InjectedError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("vfs: injected %s %s fault on %q", kind, e.Op, e.Name)
}

// Transient reports whether retrying the operation may succeed. The engine's
// background-error classifier consults this via errors.As.
func (e *InjectedError) Transient() bool { return !e.Permanent }

// Injector decides, before each labeled operation runs, whether it fails.
// op and name identify the site; n is the 1-based count of op occurrences
// so far (including this one), across all files. Returning a non-nil error
// fails the operation without reaching the wrapped filesystem. Injectors
// may be called from any goroutine and may call back into the ErrorFS's
// CrashImage/TornCrashImage (crash-at-fault-point hooks do).
type Injector interface {
	Inject(op Op, name string, n int64) error
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(op Op, name string, n int64) error

// Inject calls f.
func (f InjectorFunc) Inject(op Op, name string, n int64) error { return f(op, name, n) }

// FailNth returns a deterministic injector: with permanent false it fails
// exactly the nth occurrence of op (a one-shot transient fault); with
// permanent true it fails the nth and every later occurrence.
func FailNth(op Op, nth int64, permanent bool) Injector {
	return InjectorFunc(func(o Op, name string, n int64) error {
		if o != op {
			return nil
		}
		if n == nth || (permanent && n > nth) {
			return &InjectedError{Op: o, Name: name, Permanent: permanent}
		}
		return nil
	})
}

// FailProb returns a seeded probabilistic injector failing each listed op
// with probability p. An empty ops list targets every op.
func FailProb(seed int64, p float64, permanent bool, ops ...Op) Injector {
	var match [numOps]bool
	for _, op := range ops {
		match[op] = true
	}
	all := len(ops) == 0
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return InjectorFunc(func(o Op, name string, n int64) error {
		if !all && (int(o) >= len(match) || !match[o]) {
			return nil
		}
		mu.Lock()
		hit := rng.Float64() < p
		mu.Unlock()
		if hit {
			return &InjectedError{Op: o, Name: name, Permanent: permanent}
		}
		return nil
	})
}

// FilterName narrows inj to operations whose file name satisfies pred.
func FilterName(pred func(name string) bool, inj Injector) Injector {
	return InjectorFunc(func(o Op, name string, n int64) error {
		if !pred(name) {
			return nil
		}
		return inj.Inject(o, name, n)
	})
}

// Corruptor silently mutates the result buffer of a successful labeled read
// — the bit-rot analogue of Injector. op and name identify the site, n is
// the same 1-based occurrence count Injector.Inject sees, p is the bytes
// the read returned (mutate in place to corrupt them), and off is the file
// offset the read started at. Unlike an Injector, a Corruptor cannot fail
// the operation: the caller observes a clean read of wrong bytes, which is
// exactly what rotted media looks like above the driver.
type Corruptor interface {
	Corrupt(op Op, name string, n int64, p []byte, off int64)
}

// CorruptorFunc adapts a function to the Corruptor interface.
type CorruptorFunc func(op Op, name string, n int64, p []byte, off int64)

// Corrupt calls f.
func (f CorruptorFunc) Corrupt(op Op, name string, n int64, p []byte, off int64) {
	f(op, name, n, p, off)
}

// CorruptNth returns a deterministic corruptor: on exactly the nth
// occurrence of op it flips every bit of the byte in the middle of the
// result (or zeroes the whole result when zero is true). Later occurrences
// pass through untouched.
func CorruptNth(op Op, nth int64, zero bool) Corruptor {
	return CorruptorFunc(func(o Op, name string, n int64, p []byte, off int64) {
		if o != op || n != nth || len(p) == 0 {
			return
		}
		if zero {
			for i := range p {
				p[i] = 0
			}
			return
		}
		p[len(p)/2] ^= 0xff
	})
}

// CorruptProb returns a seeded probabilistic corruptor flipping one random
// byte of each listed op's result with probability prob. An empty ops list
// targets every op.
func CorruptProb(seed int64, prob float64, ops ...Op) Corruptor {
	var match [numOps]bool
	for _, op := range ops {
		match[op] = true
	}
	all := len(ops) == 0
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return CorruptorFunc(func(o Op, name string, n int64, p []byte, off int64) {
		if (!all && (int(o) >= len(match) || !match[o])) || len(p) == 0 {
			return
		}
		mu.Lock()
		hit := rng.Float64() < prob
		var i int
		if hit {
			i = rng.Intn(len(p))
		}
		mu.Unlock()
		if hit {
			p[i] ^= 0xff
		}
	})
}

// FilterCorruptName narrows c to reads whose file name satisfies pred.
func FilterCorruptName(pred func(name string) bool, c Corruptor) Corruptor {
	return CorruptorFunc(func(o Op, name string, n int64, p []byte, off int64) {
		if !pred(name) {
			return
		}
		c.Corrupt(o, name, n, p, off)
	})
}

// ErrorFS wraps a filesystem with labeled fault-injection sites and, when
// the wrapped filesystem is a *MemFS, torn-write crash-image simulation.
// Each operation first consults the installed injector (if any); a non-nil
// result fails the operation before it reaches the wrapped filesystem, so
// an injected Sync failure really does leave the affected bytes unsynced.
type ErrorFS struct {
	inner FS

	// counts is the per-op occurrence counter feeding Injector.Inject.
	counts [numOps]atomic.Int64

	// mu guards the fields below.
	mu   sync.Mutex
	inj  Injector
	corr Corruptor
	// pending holds, per file name, the bytes written through this ErrorFS
	// since the file's last successful sync — the data a torn crash image
	// may partially expose. Tracking is by name at handle-creation time;
	// the engine never renames a file it still writes through.
	pending map[string][]byte
}

var _ FS = (*ErrorFS)(nil)

// NewErrorFS wraps inner with no injector installed (all operations pass
// through until SetInjector is called).
func NewErrorFS(inner FS) *ErrorFS {
	return &ErrorFS{inner: inner, pending: make(map[string][]byte)}
}

// SetInjector installs inj; nil disables injection. Safe to call while the
// filesystem is in use.
func (fs *ErrorFS) SetInjector(inj Injector) {
	fs.mu.Lock()
	fs.inj = inj
	fs.mu.Unlock()
}

// SetCorruptor installs c; nil disables bit-rot corruption. Safe to call
// while the filesystem is in use.
func (fs *ErrorFS) SetCorruptor(c Corruptor) {
	fs.mu.Lock()
	fs.corr = c
	fs.mu.Unlock()
}

// OpCount returns how many occurrences of op have been observed (whether
// or not they were failed).
func (fs *ErrorFS) OpCount(op Op) int64 { return fs.counts[op].Load() }

// check counts the operation and consults the injector. The injector runs
// outside fs.mu so its hook may call back into CrashImage/TornCrashImage.
func (fs *ErrorFS) check(op Op, name string) error {
	_, err := fs.checkN(op, name)
	return err
}

// checkN is check returning the occurrence count too, for sites that also
// consult the corruptor with the same count.
func (fs *ErrorFS) checkN(op Op, name string) (int64, error) {
	n := fs.counts[op].Add(1)
	fs.mu.Lock()
	inj := fs.inj
	fs.mu.Unlock()
	if inj == nil {
		return n, nil
	}
	return n, inj.Inject(op, name, n)
}

// corrupt hands a successful read result to the installed corruptor, if any.
func (fs *ErrorFS) corrupt(op Op, name string, n int64, p []byte, off int64) {
	fs.mu.Lock()
	corr := fs.corr
	fs.mu.Unlock()
	if corr != nil {
		corr.Corrupt(op, name, n, p, off)
	}
}

// Create creates (or truncates) name, subject to OpCreate injection.
func (fs *ErrorFS) Create(name string) (File, error) {
	if err := fs.check(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.pending[name] = nil // Create truncates
	fs.mu.Unlock()
	return &errorFile{fs: fs, name: name, inner: f}, nil
}

// Open opens name for reads. Open itself is not an injection site, but the
// returned handle's operations are (Repair syncs files through Open
// handles).
func (fs *ErrorFS) Open(name string) (File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &errorFile{fs: fs, name: name, inner: f}, nil
}

// Remove deletes name, subject to OpRemove injection.
func (fs *ErrorFS) Remove(name string) error {
	if err := fs.check(OpRemove, name); err != nil {
		return err
	}
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	delete(fs.pending, name)
	fs.mu.Unlock()
	return nil
}

// Rename renames oldname to newname, subject to OpRename injection.
func (fs *ErrorFS) Rename(oldname, newname string) error {
	if err := fs.check(OpRename, oldname); err != nil {
		return err
	}
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	fs.mu.Lock()
	if p, ok := fs.pending[oldname]; ok {
		fs.pending[newname] = p
		delete(fs.pending, oldname)
	} else {
		delete(fs.pending, newname)
	}
	fs.mu.Unlock()
	return nil
}

// List returns all file names (never injected).
func (fs *ErrorFS) List() ([]string, error) { return fs.inner.List() }

// Stat returns the size of name (never injected).
func (fs *ErrorFS) Stat(name string) (int64, error) { return fs.inner.Stat(name) }

// SyncDir syncs the directory, subject to OpSyncDir injection.
func (fs *ErrorFS) SyncDir() error {
	if err := fs.check(OpSyncDir, ""); err != nil {
		return err
	}
	return fs.inner.SyncDir()
}

// CrashImage returns the crash-durable state of the wrapped MemFS (it
// panics when the inner filesystem is not a *MemFS). The injector hook may
// call this to snapshot the image at the exact fault point.
func (fs *ErrorFS) CrashImage() *MemFS {
	return fs.inner.(*MemFS).CrashClone()
}

// CorruptFileRange flips every bit in [off, off+length) of name's at-rest
// contents in the wrapped MemFS (it panics when the inner filesystem is not
// a *MemFS) — the handle crash harnesses use to rot bytes in an image
// between reopen cycles.
func (fs *ErrorFS) CorruptFileRange(name string, off, length int64) error {
	return fs.inner.(*MemFS).CorruptFileRange(name, off, length)
}

// TornCrashImage is CrashImage plus torn-write simulation: for every
// surviving file, a random prefix of its unsynced tail (bytes written
// through this ErrorFS but never durably synced) reaches the image, and
// with probability 1/2 the final bytes of that prefix are replaced with
// garbage — the states a real disk exposes when power fails mid-write.
// Synced bytes are never torn. rng drives all random choices; files are
// processed in sorted-name order so a seeded rng gives a deterministic
// image.
func (fs *ErrorFS) TornCrashImage(rng *rand.Rand) *MemFS {
	clone := fs.inner.(*MemFS).CrashClone()
	fs.mu.Lock()
	pending := make(map[string][]byte, len(fs.pending))
	names := make([]string, 0, len(fs.pending))
	for name, tail := range fs.pending {
		if len(tail) == 0 {
			continue
		}
		pending[name] = append([]byte(nil), tail...)
		names = append(names, name)
	}
	fs.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		f, err := clone.Open(name)
		if err != nil {
			continue // directory entry was not durable: nothing survives
		}
		tail := pending[name]
		k := rng.Intn(len(tail) + 1) // torn bytes that reached the platter
		frag := append([]byte(nil), tail[:k]...)
		if k > 0 && rng.Intn(2) == 0 {
			g := 1 + rng.Intn(min(k, 64))
			for i := k - g; i < k; i++ {
				frag[i] = byte(rng.Intn(256))
			}
		}
		if len(frag) > 0 {
			_, _ = f.Write(frag)
		}
		_ = f.Close()
	}
	return clone
}

// errorFile routes a handle's operations through the ErrorFS check sites
// and maintains the unsynced-bytes tracking for torn-write simulation.
type errorFile struct {
	fs    *ErrorFS
	name  string
	inner File
}

var _ File = (*errorFile)(nil)

func (f *errorFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite, f.name); err != nil {
		return 0, err
	}
	n, err := f.inner.Write(p)
	if n > 0 {
		f.fs.mu.Lock()
		f.fs.pending[f.name] = append(f.fs.pending[f.name], p[:n]...)
		f.fs.mu.Unlock()
	}
	return n, err
}

func (f *errorFile) ReadAt(p []byte, off int64) (int, error) {
	cnt, err := f.fs.checkN(OpReadAt, f.name)
	if err != nil {
		return 0, err
	}
	n, err := f.inner.ReadAt(p, off)
	if n > 0 {
		// Bit rot presents as a clean read of wrong bytes: the corruptor
		// mutates the result after the inner read succeeded, so no error
		// surfaces here — only checksums downstream can catch it.
		f.fs.corrupt(OpReadAt, f.name, cnt, p[:n], off)
	}
	return n, err
}

func (f *errorFile) Sync() error {
	if err := f.fs.check(OpSync, f.name); err != nil {
		return err
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	delete(f.fs.pending, f.name)
	f.fs.mu.Unlock()
	return nil
}

func (f *errorFile) Size() (int64, error) { return f.inner.Size() }

func (f *errorFile) PunchHole(off, length int64) error {
	if err := f.fs.check(OpPunchHole, f.name); err != nil {
		return err
	}
	return f.inner.PunchHole(off, length)
}

func (f *errorFile) Close() error { return f.inner.Close() }
