package vfs

import (
	"bytes"
	"testing"
)

func TestErrorFSCorruptNthFlipsMiddleByte(t *testing.T) {
	fs := NewErrorFS(NewMem())
	data := []byte("0123456789abcdef")
	mustCreate(t, fs, "a", data, true)
	fs.SetCorruptor(CorruptNth(OpReadAt, 1, false))

	got := readAll(t, fs, "a")
	want := append([]byte(nil), data...)
	want[len(want)/2] ^= 0xff
	if !bytes.Equal(got, want) {
		t.Fatalf("first read = %q, want middle byte flipped (%q)", got, want)
	}

	// Only the nth occurrence is corrupted; later reads pass through.
	if got := readAll(t, fs, "a"); !bytes.Equal(got, data) {
		t.Fatalf("second read = %q, want clean %q", got, data)
	}

	// The at-rest bytes were never touched: bit rot presented on the read
	// path only.
	if got := readAll(t, NewErrorFS(fs.inner), "a"); !bytes.Equal(got, data) {
		t.Fatalf("at-rest bytes = %q, want %q", got, data)
	}
}

func TestErrorFSCorruptNthZeroesResult(t *testing.T) {
	fs := NewErrorFS(NewMem())
	data := []byte("0123456789")
	mustCreate(t, fs, "a", data, true)
	fs.SetCorruptor(CorruptNth(OpReadAt, 1, true))

	got := readAll(t, fs, "a")
	if !bytes.Equal(got, make([]byte, len(data))) {
		t.Fatalf("zeroing corruptor read = %q, want all zeros", got)
	}
}

func TestErrorFSCorruptNthIgnoresOtherOps(t *testing.T) {
	fs := NewErrorFS(NewMem())
	data := []byte("0123456789")
	mustCreate(t, fs, "a", data, true)
	// A corruptor targeting an op the read path never consults must be a
	// no-op: only OpReadAt results flow through Corrupt.
	fs.SetCorruptor(CorruptNth(OpSync, 1, false))

	if got := readAll(t, fs, "a"); !bytes.Equal(got, data) {
		t.Fatalf("read = %q, want clean %q", got, data)
	}
}

func TestErrorFSCorruptProbSeededDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte("payload-"), 16)
	run := func(seed int64) []int {
		fs := NewErrorFS(NewMem())
		mustCreate(t, fs, "a", data, true)
		fs.SetCorruptor(CorruptProb(seed, 0.5, OpReadAt))
		var corrupted []int
		for i := 0; i < 40; i++ {
			if !bytes.Equal(readAll(t, fs, "a"), data) {
				corrupted = append(corrupted, i)
			}
		}
		return corrupted
	}

	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("p=0.5 corrupted %d/40 reads, want a mix", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d: %v vs %v", i, a, b)
		}
	}
}

func TestErrorFSFilterCorruptName(t *testing.T) {
	fs := NewErrorFS(NewMem())
	data := []byte("0123456789")
	mustCreate(t, fs, "victim", data, true)
	mustCreate(t, fs, "other", data, true)
	fs.SetCorruptor(FilterCorruptName(
		func(name string) bool { return name == "victim" },
		CorruptNth(OpReadAt, 1, false)))

	// The filtered-out file reads clean and, because the nth-occurrence
	// counter is global, consumes the corruptor's one shot.
	if got := readAll(t, fs, "other"); !bytes.Equal(got, data) {
		t.Fatalf("filtered file corrupted: %q", got)
	}
	if got := readAll(t, fs, "victim"); !bytes.Equal(got, data) {
		t.Fatalf("nth occurrence already consumed, read = %q", got)
	}
}

func TestErrorFSCorruptFileRangeAtRest(t *testing.T) {
	fs := NewErrorFS(NewMem())
	data := []byte("0123456789abcdef")
	mustCreate(t, fs, "a", data, true)

	if err := fs.CorruptFileRange("a", 4, 3); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	for i := 4; i < 7; i++ {
		want[i] ^= 0xff
	}
	// At-rest rot is visible on every subsequent read, through any handle.
	for i := 0; i < 2; i++ {
		if got := readAll(t, fs, "a"); !bytes.Equal(got, want) {
			t.Fatalf("read %d = %q, want %q", i, got, want)
		}
	}
}

func TestErrorFSCorruptFileRangeBeyondEOF(t *testing.T) {
	fs := NewErrorFS(NewMem())
	mustCreate(t, fs, "a", []byte("0123456789"), true)
	// Rot clamped to the file: a range straddling EOF flips only the bytes
	// that exist.
	if err := fs.CorruptFileRange("a", 8, 100); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, fs, "a")
	want := []byte("01234567")
	want = append(want, '8'^0xff, '9'^0xff)
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %q, want %q", got, want)
	}
	if err := fs.CorruptFileRange("missing", 0, 1); err == nil {
		t.Fatal("corrupting a missing file must error")
	}
}
