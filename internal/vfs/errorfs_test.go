package vfs

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func mustCreate(t *testing.T, fs FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sz)
	if sz > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestErrorFSFailNthTransient(t *testing.T) {
	fs := NewErrorFS(NewMem())
	fs.SetInjector(FailNth(OpSync, 2, false))

	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // 1st sync: passes
		t.Fatal(err)
	}
	err = f.Sync() // 2nd sync: injected
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("second Sync = %v, want InjectedError", err)
	}
	if inj.Op != OpSync || inj.Name != "a" || inj.Permanent {
		t.Fatalf("injected error = %+v, want transient OpSync on a", inj)
	}
	if !inj.Transient() {
		t.Fatal("Transient() = false for a non-permanent fault")
	}
	if err := f.Sync(); err != nil { // 3rd sync: one-shot fault has passed
		t.Fatalf("third Sync = %v, want nil", err)
	}
	if got := fs.OpCount(OpSync); got != 3 {
		t.Fatalf("OpCount(OpSync) = %d, want 3", got)
	}
}

func TestErrorFSFailNthPermanent(t *testing.T) {
	fs := NewErrorFS(NewMem())
	fs.SetInjector(FailNth(OpSync, 1, true))
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := f.Sync()
		var inj *InjectedError
		if !errors.As(err, &inj) || !inj.Permanent || inj.Transient() {
			t.Fatalf("Sync attempt %d = %v, want permanent InjectedError", i+1, err)
		}
	}
}

func TestErrorFSFailProbSeeded(t *testing.T) {
	// The same seed must fail the same occurrences; ops not listed never fail.
	run := func() []int64 {
		fs := NewErrorFS(NewMem())
		fs.SetInjector(FailProb(42, 0.3, false, OpWrite))
		f, err := fs.Create("a")
		if err != nil {
			t.Fatal(err)
		}
		var failed []int64
		for i := 0; i < 50; i++ {
			if _, err := f.Write([]byte("x")); err != nil {
				failed = append(failed, fs.OpCount(OpWrite))
			}
		}
		if err := f.Sync(); err != nil { // OpSync not targeted
			t.Fatalf("Sync = %v, want nil (untargeted op)", err)
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.3 over 50 writes injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault sites: %v vs %v", a, b)
		}
	}
}

func TestErrorFSFilterName(t *testing.T) {
	fs := NewErrorFS(NewMem())
	fs.SetInjector(FilterName(
		func(name string) bool { return strings.HasSuffix(name, ".sst") },
		FailNth(OpSync, 1, true),
	))
	other, err := fs.Create("MANIFEST-000001")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("Sync on unmatched name = %v, want nil", err)
	}
	sst, err := fs.Create("000002.sst")
	if err != nil {
		t.Fatal(err)
	}
	// The global OpSync count is already past 1; FilterName must still fail
	// this call because FailNth sees the global counter and permanent faults
	// cover every occurrence at or after nth.
	if err := sst.Sync(); err == nil {
		t.Fatal("Sync on matched name = nil, want injected error")
	}
}

func TestErrorFSRenameMovesPendingTail(t *testing.T) {
	fs := NewErrorFS(NewMem())
	mustCreate(t, fs, "tmp", []byte("payload"), false) // unsynced
	if err := fs.Rename("tmp", "CURRENT"); err != nil {
		t.Fatal(err)
	}
	// The unsynced tail must follow the rename: a torn image may expose a
	// prefix of CURRENT's bytes, not tmp's.
	img := fs.TornCrashImage(rand.New(rand.NewSource(1)))
	if _, err := img.Open("tmp"); err == nil {
		t.Fatal("tmp still present in crash image after rename")
	}
}

func TestErrorFSTornCrashImageDeterministic(t *testing.T) {
	build := func() *ErrorFS {
		fs := NewErrorFS(NewMem())
		mustCreate(t, fs, "a", []byte("durable-bytes"), true)
		f, err := fs.Open("a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("-unsynced-tail-of-a")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		mustCreate(t, fs, "b", []byte("never-synced"), false)
		return fs
	}

	imgOf := func(seed int64) map[string]string {
		fs := build()
		img := fs.TornCrashImage(rand.New(rand.NewSource(seed)))
		names, err := img.List()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(names))
		for _, n := range names {
			out[n] = string(readAll(t, img, n))
		}
		return out
	}

	x, y := imgOf(7), imgOf(7)
	if len(x) != len(y) {
		t.Fatalf("same seed, different image file sets: %v vs %v", x, y)
	}
	for n, v := range x {
		if y[n] != v {
			t.Fatalf("same seed, different torn content for %s: %q vs %q", n, v, y[n])
		}
	}

	// Synced bytes are never torn, and the tail never grows past what was
	// written: check across several seeds.
	for seed := int64(0); seed < 20; seed++ {
		fs := build()
		img := fs.TornCrashImage(rand.New(rand.NewSource(seed)))
		got := readAll(t, img, "a")
		if len(got) < len("durable-bytes") || string(got[:len("durable-bytes")]) != "durable-bytes" {
			t.Fatalf("seed %d: durable prefix torn: %q", seed, got)
		}
		if max := len("durable-bytes") + len("-unsynced-tail-of-a"); len(got) > max {
			t.Fatalf("seed %d: image longer than written data: %d > %d", seed, len(got), max)
		}
		// b's directory entry was never made durable: it must not survive.
		if _, err := img.Open("b"); err == nil {
			t.Fatalf("seed %d: never-synced file resurrected in crash image", seed)
		}
	}
}

func TestErrorFSSyncClearsPendingTail(t *testing.T) {
	fs := NewErrorFS(NewMem())
	mustCreate(t, fs, "a", []byte("alpha"), true)
	// After a successful sync nothing is pending, so every torn image is
	// byte-identical to the durable state.
	for seed := int64(0); seed < 5; seed++ {
		img := fs.TornCrashImage(rand.New(rand.NewSource(seed)))
		if got := string(readAll(t, img, "a")); got != "alpha" {
			t.Fatalf("seed %d: synced file torn: %q", seed, got)
		}
	}
}

func TestErrorFSCreateResetsPendingTail(t *testing.T) {
	fs := NewErrorFS(NewMem())
	mustCreate(t, fs, "a", []byte("one"), true)
	mustCreate(t, fs, "a", []byte("two"), true) // re-create truncates
	img := fs.TornCrashImage(rand.New(rand.NewSource(3)))
	if got := string(readAll(t, img, "a")); got != "two" {
		t.Fatalf("after re-create+sync: %q, want %q", got, "two")
	}
}
