package vfs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/simdisk"
)

// MemFS is an in-memory filesystem with durability tracking and an optional
// simulated device for timing. It is safe for concurrent use.
//
// Durability model: Write appends to a volatile buffer; Sync copies the
// buffer length into the durable watermark and (if a device is attached)
// pays the barrier cost of the dirty bytes. Directory operations (create,
// remove, rename) are volatile until SyncDir. CrashClone materializes the
// filesystem state that would survive a power failure: only durable
// directory entries, truncated to their durable length — plus files whose
// removal had not yet become durable, which reappear with their last synced
// contents (real filesystems do this; LevelDB's open path must tolerate it).
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	durable map[string]bool     // directory entry is crash-durable
	removed map[string]*memFile // removed, but removal not yet durable

	device *simdisk.Device // nil means no timing model

	// ChargeReads controls whether ReadAt operations are charged to the
	// device. The engine models a memory-constrained host (as the paper
	// does by booting with mem=8G), so device reads are charged by default
	// when a device is attached.
	ChargeReads bool
}

var _ FS = (*MemFS)(nil)

// NewMem returns an empty in-memory filesystem with no timing model.
func NewMem() *MemFS {
	return &MemFS{
		files:   make(map[string]*memFile),
		durable: make(map[string]bool),
		removed: make(map[string]*memFile),
	}
}

// NewSim returns an in-memory filesystem whose Sync/ReadAt/metadata
// operations are charged to the given simulated device.
func NewSim(device *simdisk.Device) *MemFS {
	fs := NewMem()
	fs.device = device
	fs.ChargeReads = true
	return fs
}

// Device returns the attached simulated device, or nil.
func (fs *MemFS) Device() *simdisk.Device { return fs.device }

type memFile struct {
	mu        sync.RWMutex
	name      string
	data      []byte
	syncedLen int64 // durable watermark
	allocated int64 // bytes not punched out (space accounting)
	holes     []hole
	refs      atomic.Int32 // open handles + 1 for directory presence
}

type hole struct{ off, end int64 }

// memHandle is one open handle onto a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed atomic.Bool
}

var _ File = (*memHandle)(nil)

func (fs *MemFS) metadataOp() {
	if fs.device != nil {
		fs.device.MetadataOp()
	}
}

// Create creates or truncates name.
func (fs *MemFS) Create(name string) (File, error) {
	fs.metadataOp()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{name: name}
	f.refs.Store(2) // directory + handle
	fs.files[name] = f
	fs.durable[name] = false
	delete(fs.removed, name)
	return &memHandle{fs: fs, f: f}, nil
}

// Open opens name for reading (the handle also accepts writes, which the
// engine never issues on opened files).
func (fs *MemFS) Open(name string) (File, error) {
	fs.metadataOp()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("open %q: %w", name, ErrNotFound)
	}
	f.refs.Add(1)
	return &memHandle{fs: fs, f: f}, nil
}

// Remove deletes name. The removal is volatile until SyncDir.
func (fs *MemFS) Remove(name string) error {
	fs.metadataOp()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNotFound)
	}
	delete(fs.files, name)
	if fs.durable[name] {
		// The durable image still has this entry until SyncDir.
		fs.removed[name] = f
	}
	delete(fs.durable, name)
	f.refs.Add(-1)
	return nil
}

// Rename renames oldname to newname, replacing any existing target.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.metadataOp()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldname, ErrNotFound)
	}
	if old, ok := fs.files[newname]; ok {
		old.refs.Add(-1)
	}
	delete(fs.files, oldname)
	if fs.durable[oldname] {
		fs.removed[oldname] = f
	}
	delete(fs.durable, oldname)
	fs.files[newname] = f
	fs.durable[newname] = false
	delete(fs.removed, newname)
	f.mu.Lock()
	f.name = newname
	f.mu.Unlock()
	return nil
}

// List returns all file names in no particular order.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	return names, nil
}

// Stat returns the size of name.
func (fs *MemFS) Stat(name string) (int64, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("stat %q: %w", name, ErrNotFound)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// SyncDir makes all directory operations performed so far durable.
func (fs *MemFS) SyncDir() error {
	fs.metadataOp()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name := range fs.files {
		fs.durable[name] = true
	}
	fs.removed = make(map[string]*memFile)
	return nil
}

// CrashClone returns a new filesystem holding exactly the state that would
// survive a crash at this instant. The original filesystem is unchanged.
func (fs *MemFS) CrashClone() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clone := NewMem()
	clone.device = fs.device
	clone.ChargeReads = fs.ChargeReads
	restore := func(name string, f *memFile) {
		f.mu.RLock()
		nf := &memFile{name: name}
		nf.data = append([]byte(nil), f.data[:f.syncedLen]...)
		nf.syncedLen = f.syncedLen
		nf.allocated = int64(len(nf.data))
		for _, h := range f.holes {
			if h.off < nf.syncedLen {
				end := h.end
				if end > nf.syncedLen {
					end = nf.syncedLen
				}
				nf.allocated -= end - h.off
				nf.holes = append(nf.holes, hole{h.off, end})
			}
		}
		f.mu.RUnlock()
		nf.refs.Store(1)
		clone.files[name] = nf
		clone.durable[name] = true
	}
	for name, f := range fs.files {
		if fs.durable[name] {
			restore(name, f)
		}
	}
	for name, f := range fs.removed {
		// A resurrected removal must not clobber a durable replacement
		// created under the same name after the removal.
		if _, exists := clone.files[name]; !exists {
			restore(name, f)
		}
	}
	return clone
}

// CorruptFileRange flips every bit in [off, off+length) of name's at-rest
// contents — rotted sectors in a crash or scrub image. The range is clamped
// to the file's size; corrupting an entirely out-of-range span is a no-op.
// Durability watermarks are untouched: rot does not alter what was synced,
// only what the sectors now hold.
func (fs *MemFS) CorruptFileRange(name string, off, length int64) error {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("corrupt %q: %w", name, ErrNotFound)
	}
	if off < 0 || length <= 0 {
		return fmt.Errorf("corrupt %q: invalid range [%d,+%d)", name, off, length)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + length
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	for i := off; i < end; i++ {
		f.data[i] ^= 0xff
	}
	return nil
}

// AllocatedBytes returns the total allocated (non-hole) bytes across all
// files — the space accounting that hole punching reduces.
func (fs *MemFS) AllocatedBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, f := range fs.files {
		f.mu.RLock()
		total += f.allocated
		f.mu.RUnlock()
	}
	return total
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed.Load() {
		return 0, ErrClosed
	}
	h.f.mu.Lock()
	h.f.data = append(h.f.data, p...)
	h.f.allocated += int64(len(p))
	h.f.mu.Unlock()
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed.Load() {
		return 0, ErrClosed
	}
	h.f.mu.RLock()
	size := int64(len(h.f.data))
	var n int
	if off < size {
		n = copy(p, h.f.data[off:])
	}
	h.f.mu.RUnlock()
	if h.fs.ChargeReads && h.fs.device != nil && n > 0 {
		h.fs.device.Read(int64(n))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	if h.closed.Load() {
		return ErrClosed
	}
	h.f.mu.Lock()
	dirty := int64(len(h.f.data)) - h.f.syncedLen
	h.f.syncedLen = int64(len(h.f.data))
	h.f.mu.Unlock()
	if dirty < 0 {
		dirty = 0
	}
	// Journaling filesystems in ordered mode (ext4, xfs) commit a newly
	// created file's directory entry as part of the file's first fsync;
	// LevelDB's commit protocol (sync table bytes, then sync MANIFEST,
	// no per-file directory fsync) depends on this, so the crash model
	// matches it: syncing a file makes its directory entry durable.
	h.fs.mu.Lock()
	h.f.mu.RLock()
	name := h.f.name
	h.f.mu.RUnlock()
	if cur, ok := h.fs.files[name]; ok && cur == h.f {
		h.fs.durable[name] = true
		delete(h.fs.removed, name)
	}
	h.fs.mu.Unlock()
	if h.fs.device != nil {
		h.fs.device.Barrier(dirty)
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	if h.closed.Load() {
		return 0, ErrClosed
	}
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return int64(len(h.f.data)), nil
}

// PunchHole zeroes [off, off+length) and releases the space. No barrier is
// charged: hole punching is a metadata operation.
func (h *memHandle) PunchHole(off, length int64) error {
	if h.closed.Load() {
		return ErrClosed
	}
	if off < 0 || length <= 0 {
		return fmt.Errorf("punch hole %q: invalid range [%d,+%d)", h.f.name, off, length)
	}
	h.fs.metadataOp()
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	end := off + length
	if end > int64(len(h.f.data)) {
		end = int64(len(h.f.data))
	}
	if off >= end {
		return nil
	}
	for i := off; i < end; i++ {
		h.f.data[i] = 0
	}
	h.f.allocated -= end - off
	h.f.holes = append(h.f.holes, hole{off, end})
	return nil
}

func (h *memHandle) Close() error {
	if h.closed.Swap(true) {
		return ErrClosed
	}
	h.f.refs.Add(-1)
	return nil
}
