package vfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestMemFSMatchesModel drives MemFS with random operation sequences and
// cross-checks contents against a plain map model, including the crash
// image against a durability-tracking model.
func TestMemFSMatchesModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMem()
		type state struct {
			all    []byte // current contents
			synced int    // durable prefix length
		}
		model := map[string]*state{}        // live files
		durable := map[string]bool{}        // dir entry durable
		removedImage := map[string][]byte{} // files whose removal is volatile

		handles := map[string]File{}
		names := []string{"a", "b", "c", "d"}
		openHandle := func(name string) File {
			if h, ok := handles[name]; ok {
				return h
			}
			return nil
		}

		for op := 0; op < 300; op++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(10) {
			case 0, 1: // create
				if h := openHandle(name); h != nil {
					h.Close()
					delete(handles, name)
				}
				f, err := fs.Create(name)
				if err != nil {
					t.Fatal(err)
				}
				handles[name] = f
				model[name] = &state{}
				durable[name] = false
				delete(removedImage, name)
			case 2, 3, 4: // write
				h := openHandle(name)
				if h == nil {
					continue
				}
				data := make([]byte, rng.Intn(100)+1)
				rng.Read(data)
				if _, err := h.Write(data); err != nil {
					t.Fatal(err)
				}
				st := model[name]
				st.all = append(st.all, data...)
			case 5, 6: // sync
				h := openHandle(name)
				if h == nil {
					continue
				}
				if err := h.Sync(); err != nil {
					t.Fatal(err)
				}
				st := model[name]
				st.synced = len(st.all)
				durable[name] = true
				delete(removedImage, name)
			case 7: // remove
				if _, ok := model[name]; !ok {
					continue
				}
				if h := openHandle(name); h != nil {
					h.Close()
					delete(handles, name)
				}
				if err := fs.Remove(name); err != nil {
					t.Fatal(err)
				}
				if durable[name] {
					removedImage[name] = append([]byte(nil), model[name].all[:model[name].synced]...)
				}
				delete(model, name)
				delete(durable, name)
			case 8: // verify current contents
				if _, ok := model[name]; !ok {
					continue
				}
				got, err := ReadWholeFile(fs, name)
				if err != nil {
					t.Fatalf("seed %d op %d: read %s: %v", seed, op, name, err)
				}
				if !bytes.Equal(got, model[name].all) {
					t.Fatalf("seed %d op %d: %s contents diverged", seed, op, name)
				}
			case 9: // syncdir
				fs.SyncDir()
				for n := range model {
					durable[n] = true
				}
				removedImage = map[string][]byte{}
			}
		}

		// Crash check: clone must contain exactly the durable view.
		clone := fs.CrashClone()
		cloneNames, _ := clone.List()
		got := map[string]bool{}
		for _, n := range cloneNames {
			got[n] = true
		}
		for n, st := range model {
			want := durable[n]
			if got[n] != want {
				t.Fatalf("seed %d: file %s durable=%v but present=%v", seed, n, want, got[n])
			}
			if want {
				data, err := ReadWholeFile(clone, n)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(data, st.all[:st.synced]) {
					t.Fatalf("seed %d: %s crash image mismatch (%d vs %d bytes)",
						seed, n, len(data), st.synced)
				}
			}
		}
		for n, img := range removedImage {
			if _, stillLive := model[n]; stillLive {
				continue // replaced by a newer live file; covered above
			}
			data, err := ReadWholeFile(clone, n)
			if err != nil {
				t.Fatalf("seed %d: resurrected file %s missing: %v", seed, n, err)
			}
			if !bytes.Equal(data, img) {
				t.Fatalf("seed %d: resurrected %s content mismatch", seed, n)
			}
		}
		for _, h := range handles {
			h.Close()
		}
		_ = fmt.Sprint()
	}
}
