package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// OSFS is a filesystem backed by a real directory on disk. It is used by
// the examples and by anyone embedding the library against real storage;
// benchmarks use MemFS with a simulated device instead.
type OSFS struct {
	dir string
}

var _ FS = (*OSFS)(nil)

// NewOS returns a filesystem rooted at dir, creating it if necessary.
func NewOS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: create root %q: %w", dir, err)
	}
	return &OSFS{dir: dir}, nil
}

// Root returns the directory this filesystem is rooted at.
func (o *OSFS) Root() string { return o.dir }

func (o *OSFS) path(name string) string { return filepath.Join(o.dir, name) }

// Create creates or truncates name for appending.
func (o *OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs: create %q: %w", name, err)
	}
	return &osFile{f: f}, nil
}

// Open opens name for random-access reads.
func (o *OSFS) Open(name string) (File, error) {
	f, err := os.Open(o.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("vfs: open %q: %w", name, ErrNotFound)
		}
		return nil, fmt.Errorf("vfs: open %q: %w", name, err)
	}
	return &osFile{f: f, readonly: true}, nil
}

// Remove deletes name.
func (o *OSFS) Remove(name string) error {
	if err := os.Remove(o.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("vfs: remove %q: %w", name, ErrNotFound)
		}
		return fmt.Errorf("vfs: remove %q: %w", name, err)
	}
	return nil
}

// Rename renames oldname to newname.
func (o *OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(o.path(oldname), o.path(newname)); err != nil {
		return fmt.Errorf("vfs: rename %q -> %q: %w", oldname, newname, err)
	}
	return nil
}

// List returns the names of all regular files in the root.
func (o *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, fmt.Errorf("vfs: list %q: %w", o.dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Stat returns the size of name.
func (o *OSFS) Stat(name string) (int64, error) {
	info, err := os.Stat(o.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("vfs: stat %q: %w", name, ErrNotFound)
		}
		return 0, fmt.Errorf("vfs: stat %q: %w", name, err)
	}
	return info.Size(), nil
}

// SyncDir fsyncs the root directory so renames and unlinks are durable.
func (o *OSFS) SyncDir() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return fmt.Errorf("vfs: open dir %q: %w", o.dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("vfs: sync dir %q: %w", o.dir, err)
	}
	return nil
}

type osFile struct {
	f        *os.File
	readonly bool
}

var _ File = (*osFile)(nil)

func (o *osFile) Write(p []byte) (int, error) {
	if o.readonly {
		return 0, ErrReadOnly
	}
	return o.f.Write(p)
}

func (o *osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

func (o *osFile) Sync() error { return o.f.Sync() }

func (o *osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// PunchHole deallocates the given range natively where the platform and
// filesystem support it. Where they do not, it zeroes the range in place
// (so stale table bytes cannot be resurrected by a later Repair scan) and
// returns an error wrapping ErrPunchHoleUnsupported so callers can account
// the range as dead rather than reclaimed. Engine correctness only
// requires that holes read back as zeros, which both paths guarantee.
func (o *osFile) PunchHole(off, length int64) error {
	if o.readonly {
		return ErrReadOnly
	}
	if length <= 0 {
		return nil
	}
	switch err := punchHoleNative(o.f, off, length); {
	case err == nil:
		return nil
	case !errors.Is(err, ErrPunchHoleUnsupported):
		return fmt.Errorf("vfs: punch hole: %w", err)
	}
	const chunk = 64 << 10
	zeros := make([]byte, chunk)
	remaining, at := length, off
	for remaining > 0 {
		n := remaining
		if n > chunk {
			n = chunk
		}
		if _, err := o.f.WriteAt(zeros[:n], at); err != nil {
			return fmt.Errorf("vfs: punch hole: %w", err)
		}
		at += n
		remaining -= n
	}
	return fmt.Errorf("vfs: punch hole [%d,+%d): %w", off, length, ErrPunchHoleUnsupported)
}

func (o *osFile) Close() error { return o.f.Close() }
