//go:build linux

package vfs

import (
	"errors"
	"os"
	"syscall"
)

// fallocate flags from linux/falloc.h; the syscall package does not export
// them. Punching requires KEEP_SIZE so the file length is unchanged.
const (
	fallocFlKeepSize  = 0x1
	fallocFlPunchHole = 0x2
)

// punchHoleNative deallocates [off, off+length) with FALLOC_FL_PUNCH_HOLE.
// Filesystems without hole support (and kernels without fallocate) report
// ErrPunchHoleUnsupported so the caller can fall back to zeroing.
func punchHoleNative(f *os.File, off, length int64) error {
	err := syscall.Fallocate(int(f.Fd()), fallocFlPunchHole|fallocFlKeepSize, off, length)
	if errors.Is(err, syscall.EOPNOTSUPP) || errors.Is(err, syscall.ENOSYS) {
		return ErrPunchHoleUnsupported
	}
	return err
}
