//go:build !linux

package vfs

import "os"

// punchHoleNative reports no support on platforms without a hole-punching
// syscall; the caller falls back to zeroing the range in place.
func punchHoleNative(*os.File, int64, int64) error {
	return ErrPunchHoleUnsupported
}
