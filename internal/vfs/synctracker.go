package vfs

import "sync"

// SyncChecker observes sync barriers on a SyncTrackerFS. The engine's
// build-tag-gated invariant mode (see internal/core) installs a checker
// that decodes the MANIFEST on every sync and panics if it validates a
// table file that still has unsynced bytes — the runtime twin of the
// static barrierorder analyzer in internal/boltvet.
type SyncChecker interface {
	// Capture reports whether the tracker should retain the named file's
	// full content and report its syncs to OnSync. Called once per Create.
	Capture(name string) bool
	// OnSync runs when a captured file is synced, before the sync reaches
	// the underlying filesystem, so a panic here fails the process while
	// the violating barrier is still in flight. content is the file's
	// complete content written through this tracker; dirty reports the
	// unsynced byte count of any file by name and is valid only until
	// OnSync returns. OnSync must not call back into the filesystem.
	OnSync(name string, content []byte, dirty func(name string) int64)
}

// NewSyncTrackerFS wraps inner so that every file's unsynced byte count is
// tracked by name, and syncs of checker-selected files are reported to the
// checker. Tracking spans handles: bytes written through one handle stay
// dirty until some handle of the same name syncs. PunchHole is deliberately
// not counted — hole punching is barrier-free by design.
func NewSyncTrackerFS(inner FS, checker SyncChecker) FS {
	return &syncTrackerFS{
		inner:   inner,
		checker: checker,
		dirty:   make(map[string]int64),
		content: make(map[string][]byte),
	}
}

type syncTrackerFS struct {
	inner   FS
	checker SyncChecker

	// mu guards the maps below.
	mu      sync.Mutex
	dirty   map[string]int64  // name -> unsynced bytes
	content map[string][]byte // captured names -> full content
}

var _ FS = (*syncTrackerFS)(nil)

func (t *syncTrackerFS) Create(name string) (File, error) {
	f, err := t.inner.Create(name)
	if err != nil {
		return nil, err
	}
	captured := t.checker.Capture(name)
	t.mu.Lock()
	t.dirty[name] = 0
	if captured {
		t.content[name] = nil // Create truncates
	} else {
		delete(t.content, name)
	}
	t.mu.Unlock()
	return &syncTrackerFile{fs: t, name: name, inner: f, captured: captured}, nil
}

func (t *syncTrackerFS) Open(name string) (File, error) {
	f, err := t.inner.Open(name)
	if err != nil {
		return nil, err
	}
	// Read handles still route Sync through the tracker: syncing any
	// handle of a name settles that name's dirty bytes (Repair reopens
	// salvaged files just to sync them).
	t.mu.Lock()
	_, captured := t.content[name]
	t.mu.Unlock()
	return &syncTrackerFile{fs: t, name: name, inner: f, captured: captured}, nil
}

func (t *syncTrackerFS) Remove(name string) error {
	if err := t.inner.Remove(name); err != nil {
		return err
	}
	t.mu.Lock()
	delete(t.dirty, name)
	delete(t.content, name)
	t.mu.Unlock()
	return nil
}

func (t *syncTrackerFS) Rename(oldname, newname string) error {
	if err := t.inner.Rename(oldname, newname); err != nil {
		return err
	}
	t.mu.Lock()
	if d, ok := t.dirty[oldname]; ok {
		t.dirty[newname] = d
		delete(t.dirty, oldname)
	}
	if c, ok := t.content[oldname]; ok {
		t.content[newname] = c
		delete(t.content, oldname)
	} else {
		delete(t.content, newname)
	}
	t.mu.Unlock()
	return nil
}

func (t *syncTrackerFS) List() ([]string, error)         { return t.inner.List() }
func (t *syncTrackerFS) Stat(name string) (int64, error) { return t.inner.Stat(name) }
func (t *syncTrackerFS) SyncDir() error                  { return t.inner.SyncDir() }

func (t *syncTrackerFS) dirtyBytes(name string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dirty[name]
}

type syncTrackerFile struct {
	fs       *syncTrackerFS
	name     string
	inner    File
	captured bool
}

var _ File = (*syncTrackerFile)(nil)

func (f *syncTrackerFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	if n > 0 {
		t := f.fs
		t.mu.Lock()
		t.dirty[f.name] += int64(n)
		if f.captured {
			t.content[f.name] = append(t.content[f.name], p[:n]...)
		}
		t.mu.Unlock()
	}
	return n, err
}

func (f *syncTrackerFile) Sync() error {
	t := f.fs
	if f.captured {
		t.mu.Lock()
		content := append([]byte(nil), t.content[f.name]...)
		t.mu.Unlock()
		// The checker runs outside the tracker lock (its dirty callback
		// re-enters it) and before the inner Sync, so an invariant panic
		// reports the barrier that was about to be paid, not one already
		// durable.
		t.checker.OnSync(f.name, content, t.dirtyBytes)
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	t.mu.Lock()
	t.dirty[f.name] = 0
	t.mu.Unlock()
	return nil
}

func (f *syncTrackerFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *syncTrackerFile) Size() (int64, error)                    { return f.inner.Size() }
func (f *syncTrackerFile) PunchHole(off, length int64) error       { return f.inner.PunchHole(off, length) }
func (f *syncTrackerFile) Close() error                            { return f.inner.Close() }
