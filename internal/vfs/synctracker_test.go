package vfs

import (
	"bytes"
	"testing"
)

// recordingChecker captures MANIFEST-like files (any name with prefix "M")
// and records every OnSync observation.
type recordingChecker struct {
	syncs []syncEvent
}

type syncEvent struct {
	name    string
	content []byte
	dirty   map[string]int64
}

func (c *recordingChecker) Capture(name string) bool { return name[0] == 'M' }

func (c *recordingChecker) OnSync(name string, content []byte, dirty func(string) int64) {
	c.syncs = append(c.syncs, syncEvent{
		name:    name,
		content: content,
		dirty: map[string]int64{
			"data":  dirty("data"),
			"other": dirty("other"),
		},
	})
}

func TestSyncTrackerDirtyAccounting(t *testing.T) {
	chk := &recordingChecker{}
	fs := NewSyncTrackerFS(NewMem(), chk)

	data, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := data.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}

	m, err := fs.Create("M1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write([]byte("edit-1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(chk.syncs) != 1 {
		t.Fatalf("OnSync calls = %d, want 1", len(chk.syncs))
	}
	ev := chk.syncs[0]
	if ev.name != "M1" || !bytes.Equal(ev.content, []byte("edit-1")) {
		t.Fatalf("OnSync saw (%q, %q)", ev.name, ev.content)
	}
	if ev.dirty["data"] != 100 || ev.dirty["other"] != 0 {
		t.Fatalf("dirty at sync = %v", ev.dirty)
	}

	// Syncing the data file settles it; the next MANIFEST sync sees zero.
	if err := data.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write([]byte("+2")); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	ev = chk.syncs[1]
	if !bytes.Equal(ev.content, []byte("edit-1+2")) {
		t.Fatalf("captured content = %q, want full history", ev.content)
	}
	if ev.dirty["data"] != 0 {
		t.Fatalf("dirty[data] after sync = %d, want 0", ev.dirty["data"])
	}
}

func TestSyncTrackerCrossHandleAndRename(t *testing.T) {
	chk := &recordingChecker{}
	fs := NewSyncTrackerFS(NewMem(), chk)

	w, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Dirtiness survives Close and is keyed by name: a read handle's Sync
	// settles it (the Repair path does exactly this).
	r, err := fs.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := fs.Create("other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("other", "data"); err != nil {
		t.Fatal(err)
	}

	m, err := fs.Create("M1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	ev := chk.syncs[0]
	if ev.dirty["data"] != 5 || ev.dirty["other"] != 0 {
		t.Fatalf("dirty after rename = %v, want data:5 other:0", ev.dirty)
	}

	// Remove drops tracking state entirely.
	if err := fs.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := chk.syncs[1].dirty["data"]; d != 0 {
		t.Fatalf("dirty after remove = %d, want 0", d)
	}
}
