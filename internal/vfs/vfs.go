// Package vfs abstracts the filesystem underneath the engine so that the
// same LSM-tree code runs against real files (OS backend) or against an
// in-memory filesystem with durability tracking, crash simulation, and an
// attached simulated SSD timing model (Mem backend). The benchmark harness
// uses the Mem backend with a simdisk.Device so that fsync barriers have a
// realistic, controllable cost; the crash tests use the Mem backend's
// sync-tracking to verify the engine's two-barrier commit protocol.
package vfs

import (
	"errors"
	"fmt"
	"io"
)

// ErrNotFound is returned when a named file does not exist.
var ErrNotFound = errors.New("vfs: file not found")

// ErrReadOnly is returned when writing to a file opened for reading.
var ErrReadOnly = errors.New("vfs: file is read-only")

// ErrClosed is returned when operating on a closed file.
var ErrClosed = errors.New("vfs: file is closed")

// ErrPunchHoleUnsupported reports that PunchHole could not deallocate the
// range because the backend (platform or filesystem) lacks hole-punching
// support. Implementations that return it still guarantee the range reads
// back as zeros — only the space reclamation is missing — so callers can
// degrade to accounting the range as dead instead of failing.
var ErrPunchHoleUnsupported = errors.New("vfs: punch hole unsupported by backend")

// File is a file handle. Files created with Create support appending via
// Write; files opened with Open support random reads via ReadAt. The Mem
// backend supports both on every handle; the OS backend opens files with
// modes matching the method used.
//
//boltvet:mustclose
type File interface {
	io.Closer
	// Write appends p to the file.
	Write(p []byte) (int, error)
	// ReadAt reads len(p) bytes starting at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// Sync makes all written data durable. On the Mem backend this is the
	// data barrier: it charges the simulated device and commits the file's
	// contents to the crash-durable image.
	Sync() error
	// Size returns the current file size in bytes.
	Size() (int64, error)
	// PunchHole deallocates the byte range [off, off+length), keeping the
	// file size unchanged. Reads from a hole return zeros. Hole punching is
	// barrier-free (the BoLT paper relies on this: dead logical SSTables
	// are reclaimed without fsync).
	PunchHole(off, length int64) error
}

// FS is a flat-namespace filesystem rooted at the database directory.
type FS interface {
	// Create creates (or truncates) the named file for appending.
	Create(name string) (File, error)
	// Open opens the named file for random-access reads.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldname, newname string) error
	// List returns the names of all files.
	List() ([]string, error)
	// Stat returns the size of the named file.
	Stat(name string) (int64, error)
	// SyncDir makes directory operations (create/remove/rename) durable.
	SyncDir() error
}

// ReadFull reads exactly len(p) bytes from f at off.
func ReadFull(f File, p []byte, off int64) error {
	n, err := f.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("vfs: short read (%d of %d at %d): %w", n, len(p), off, err)
}

// WriteFile creates name and writes data followed by a sync; a convenience
// used for small metadata files such as CURRENT.
func WriteFile(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadWholeFile returns the full contents of name.
func ReadWholeFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	if err := ReadFull(f, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}
