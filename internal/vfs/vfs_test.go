package vfs

import (
	"errors"
	"io"
	"testing"

	"github.com/bolt-lsm/bolt/internal/simdisk"
)

// backends returns one instance of every FS implementation for shared tests.
func backends(t *testing.T) map[string]FS {
	t.Helper()
	osfs, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"mem": NewMem(),
		"sim": NewSim(simdisk.NewDevice(simdisk.AccountingProfile())),
		"os":  osfs,
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("a")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if sz, _ := f.Size(); sz != 11 {
				t.Fatalf("Size = %d, want 11", sz)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := fs.Open("a")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 5)
			if _, err := r.ReadAt(buf, 6); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "world" {
				t.Fatalf("read %q, want world", buf)
			}
		})
	}
}

func TestReadAtEOF(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("a")
			f.Write([]byte("abc"))
			f.Close()
			r, _ := fs.Open("a")
			defer r.Close()
			buf := make([]byte, 10)
			n, err := r.ReadAt(buf, 1)
			if n != 2 || !errors.Is(err, io.EOF) {
				t.Fatalf("ReadAt = (%d, %v), want (2, EOF)", n, err)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(missing) = %v, want ErrNotFound", err)
			}
			if _, err := fs.Stat("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Stat(missing) = %v, want ErrNotFound", err)
			}
			if err := fs.Remove("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Remove(missing) = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestRenameReplaces(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			mustWrite(t, fs, "a", "AAA")
			mustWrite(t, fs, "b", "BBB")
			if err := fs.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			data, err := ReadWholeFile(fs, "b")
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "AAA" {
				t.Fatalf("b = %q, want AAA", data)
			}
			if _, err := fs.Open("a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("a should be gone, got %v", err)
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			mustWrite(t, fs, "x", "1")
			mustWrite(t, fs, "y", "2")
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, n := range names {
				got[n] = true
			}
			if !got["x"] || !got["y"] || len(names) != 2 {
				t.Fatalf("List = %v", names)
			}
		})
	}
}

func TestPunchHoleReadsZero(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("h")
			f.Write([]byte("0123456789"))
			if err := f.PunchHole(2, 5); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 10)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			want := "01\x00\x00\x00\x00\x007 89"
			_ = want
			if string(buf[:2]) != "01" || string(buf[7:]) != "789" {
				t.Fatalf("hole edges damaged: %q", buf)
			}
			for i := 2; i < 7; i++ {
				if buf[i] != 0 {
					t.Fatalf("byte %d not zero: %q", i, buf)
				}
			}
			if sz, _ := f.Size(); sz != 10 {
				t.Fatalf("size changed by hole punch: %d", sz)
			}
			f.Close()
		})
	}
}

func mustWrite(t *testing.T, fs FS, name, data string) {
	t.Helper()
	if err := WriteFile(fs, name, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

func TestMemAllocatedBytes(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write(make([]byte, 1000))
	if got := fs.AllocatedBytes(); got != 1000 {
		t.Fatalf("AllocatedBytes = %d, want 1000", got)
	}
	f.PunchHole(0, 400)
	if got := fs.AllocatedBytes(); got != 600 {
		t.Fatalf("AllocatedBytes after punch = %d, want 600", got)
	}
	f.Close()
	fs.Remove("a")
	if got := fs.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes after remove = %d, want 0", got)
	}
}

func TestCrashLosesUnsyncedData(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte(" volatile"))
	fs.SyncDir()

	clone := fs.CrashClone()
	data, err := ReadWholeFile(clone, "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("crash clone = %q, want only synced prefix", data)
	}
}

func TestCrashLosesUnsyncedDirEntries(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("never-synced")
	f.Write([]byte("x"))
	// Created but never synced: both content and directory entry are
	// volatile, so the file vanishes in a crash.
	clone := fs.CrashClone()
	if _, err := clone.Open("never-synced"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unsynced file survived crash: %v", err)
	}
}

func TestSyncMakesDirEntryDurable(t *testing.T) {
	// Ordered-journal model: fsyncing a new file also commits its
	// directory entry (see memHandle.Sync).
	fs := NewMem()
	f, _ := fs.Create("synced")
	f.Write([]byte("x"))
	f.Sync()
	clone := fs.CrashClone()
	data, err := ReadWholeFile(clone, "synced")
	if err != nil || string(data) != "x" {
		t.Fatalf("synced file lost in crash: %q, %v", data, err)
	}
}

func TestCrashResurrectsUnsyncedRemoval(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write([]byte("zombie"))
	f.Sync()
	f.Close()
	fs.SyncDir()
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	// Removal not yet durable: after a crash the file reappears.
	clone := fs.CrashClone()
	data, err := ReadWholeFile(clone, "a")
	if err != nil {
		t.Fatalf("removed-but-not-durably file should reappear: %v", err)
	}
	if string(data) != "zombie" {
		t.Fatalf("resurrected contents = %q", data)
	}
	// After SyncDir the removal is durable.
	fs.SyncDir()
	clone2 := fs.CrashClone()
	if _, err := clone2.Open("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("durably removed file survived crash: %v", err)
	}
}

func TestCrashCloneIndependent(t *testing.T) {
	fs := NewMem()
	mustWrite(t, fs, "a", "one")
	fs.SyncDir()
	clone := fs.CrashClone()
	// Mutating the original must not affect the clone.
	f, _ := fs.Create("a")
	f.Write([]byte("two"))
	f.Sync()
	f.Close()
	data, _ := ReadWholeFile(clone, "a")
	if string(data) != "one" {
		t.Fatalf("clone mutated: %q", data)
	}
}

func TestSimChargesDevice(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.AccountingProfile())
	fs := NewSim(dev)
	f, _ := fs.Create("a")
	f.Write(make([]byte, 4096))
	f.Sync()
	f.Sync() // second sync has no dirty bytes but still a barrier
	buf := make([]byte, 1024)
	f.ReadAt(buf, 0)
	f.Close()

	s := dev.Stats()
	if s.Barriers != 2 {
		t.Errorf("Barriers = %d, want 2", s.Barriers)
	}
	if s.BytesFlushed != 4096 {
		t.Errorf("BytesFlushed = %d, want 4096", s.BytesFlushed)
	}
	if s.Reads != 1 || s.BytesRead != 1024 {
		t.Errorf("Reads = %d BytesRead = %d", s.Reads, s.BytesRead)
	}
}

func TestClosedHandleRejectsOps(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after close = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v", err)
	}
}

func TestOSReadOnlyHandleRejectsWrite(t *testing.T) {
	osfs, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, osfs, "a", "data")
	r, err := osfs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Write on read-only handle = %v", err)
	}
}
