// Package vlog implements the value log: CRC-framed append-only segments
// holding large values out of line, so the LSM tree carries only small
// (key → pointer) entries and compactions stop re-copying value bytes
// (WAL-time key-value separation, after BVLSM/WiscKey).
//
// A segment is a sequence of records:
//
//	record  := len(4, LE, payload bytes) | hcrc(4) | pcrc(4) | payload
//	payload := keyLen(uvarint) | key | value
//
// hcrc is the masked CRC32C of the length field alone and pcrc of the
// payload. Splitting the checksum keeps record *boundaries* recoverable
// after garbage collection punches a record's payload range: the 12-byte
// header survives the punch, so checksum walks (recovery, Repair, dump
// -verify) still parse the segment — a punched record shows a valid
// header with a failing payload CRC, which is exactly how a walk tells
// "reclaimed" from "torn tail" (invalid header).
//
// The key is stored alongside the value so a segment can be scanned
// standalone: garbage collection liveness-checks each record by looking
// its key up in the tree, without any side index.
package vlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// HeaderSize is the fixed per-record header: length, header CRC, payload
// CRC, four bytes each.
const HeaderSize = 12

// ErrCorrupt reports a value-log record whose checksum does not match —
// bit rot, a torn tail, or a pointer into a reclaimed (punched) range.
var ErrCorrupt = errors.New("vlog: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskCRC applies LevelDB's CRC masking (as internal/logrec does) so CRCs
// of data that itself contains CRCs stay well distributed.
func maskCRC(c uint32) uint32 { return ((c >> 15) | (c << 17)) + 0xa282ead8 }

// Pointer addresses one record: (segment file number, byte offset, total
// record length including header). It is what a keys.KindSetPtr entry
// stores as its value.
type Pointer struct {
	Seg uint64
	Off int64
	Len int64
}

// Encode appends the pointer's varint encoding to dst.
func (p Pointer) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, p.Seg)
	dst = binary.AppendUvarint(dst, uint64(p.Off))
	dst = binary.AppendUvarint(dst, uint64(p.Len))
	return dst
}

// DecodePointer parses a pointer encoded by Encode.
func DecodePointer(data []byte) (Pointer, error) {
	var p Pointer
	var n1, n2, n3 int
	p.Seg, n1 = binary.Uvarint(data)
	if n1 <= 0 {
		return Pointer{}, fmt.Errorf("vlog: bad pointer segment")
	}
	off, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		return Pointer{}, fmt.Errorf("vlog: bad pointer offset")
	}
	length, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		return Pointer{}, fmt.Errorf("vlog: bad pointer length")
	}
	p.Off, p.Len = int64(off), int64(length)
	return p, nil
}

// EncodedLen returns the on-disk record size for a key/value pair.
func EncodedLen(keyLen, valueLen int) int64 {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(keyLen))
	return int64(HeaderSize + n + keyLen + valueLen)
}

// appendRecord appends the framed record for (key, value) to dst.
func appendRecord(dst, key, value []byte) []byte {
	payloadStart := len(dst) + HeaderSize
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	payload := dst[payloadStart:]
	hdr := dst[payloadStart-HeaderSize : payloadStart]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], maskCRC(crc32.Checksum(hdr[0:4], castagnoli)))
	binary.LittleEndian.PutUint32(hdr[8:12], maskCRC(crc32.Checksum(payload, castagnoli)))
	return dst
}

// parseHeader validates the header CRC and returns the payload length.
func parseHeader(hdr []byte) (payloadLen int64, ok bool) {
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if maskCRC(crc32.Checksum(hdr[0:4], castagnoli)) != want {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint32(hdr[0:4])), true
}

// parsePayload splits a checksum-verified payload into key and value.
func parsePayload(payload []byte) (key, value []byte, err error) {
	kl, n := binary.Uvarint(payload)
	if n <= 0 || int64(n)+int64(kl) > int64(len(payload)) {
		return nil, nil, fmt.Errorf("vlog: bad record key length")
	}
	return payload[n : n+int(kl)], payload[n+int(kl):], nil
}

// payloadOK reports whether the payload matches the header's payload CRC.
func payloadOK(hdr, payload []byte) bool {
	want := binary.LittleEndian.Uint32(hdr[8:12])
	return maskCRC(crc32.Checksum(payload, castagnoli)) == want
}

// Writer appends records to one open segment. Unlike wal.Writer it is
// self-locking: appends come only from the group-commit leader (serialized
// by the engine), but Sync is also called by flush goroutines folding the
// value log into the flush barrier, and the two must not race on the
// buffer state.
//
//boltvet:mustclose
type Writer struct {
	seg uint64 //boltvet:guardedby none -- immutable

	mu     sync.Mutex
	f      vfs.File //boltvet:guardedby mu
	size   int64    //boltvet:guardedby mu
	synced int64    //boltvet:guardedby mu
	sealed bool     //boltvet:guardedby mu
	buf    []byte   //boltvet:guardedby mu
}

// NewWriter creates segment file seg (named by nameOf) in fs, starting
// empty.
func NewWriter(fs vfs.FS, name string, seg uint64) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("vlog: create %q: %w", name, err)
	}
	return &Writer{seg: seg, f: f}, nil
}

// Seg returns the segment's file number.
func (w *Writer) Seg() uint64 { return w.seg }

// Append writes one record and returns its pointer. The bytes are durable
// only after a following Sync.
func (w *Writer) Append(key, value []byte) (Pointer, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed {
		return Pointer{}, errors.New("vlog: writer sealed")
	}
	w.buf = appendRecord(w.buf[:0], key, value)
	if _, err := w.f.Write(w.buf); err != nil {
		return Pointer{}, fmt.Errorf("vlog: append segment %d: %w", w.seg, err)
	}
	p := Pointer{Seg: w.seg, Off: w.size, Len: int64(len(w.buf))}
	w.size += int64(len(w.buf))
	return p, nil
}

// Sync makes all appended records durable. On a sealed writer it is a
// no-op (sealing synced the segment).
//
//boltvet:ignore lockorder -- w.f.Sync is vfs.File's Sync, not Writer's; the call-graph over-approximates interface dispatch by method name
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed || w.synced == w.size {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("vlog: sync segment %d: %w", w.seg, err)
	}
	w.synced = w.size
	return nil
}

// Size returns the segment's current length in bytes.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// SyncedSize returns the length up to which the segment is known durable.
// Appends happen at record granularity, so the value is always a record
// boundary.
func (w *Writer) SyncedSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// Seal syncs and closes the write handle; the segment is immutable
// afterwards. Safe to call twice.
//
//boltvet:ignore lockorder -- sealLocked's w.f.Sync is vfs.File's Sync, not Writer's; the call-graph over-approximates interface dispatch by method name
func (w *Writer) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealLocked()
}

func (w *Writer) sealLocked() error {
	if w.sealed {
		return nil
	}
	w.sealed = true
	err := w.f.Sync()
	if err == nil {
		w.synced = w.size
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("vlog: seal segment %d: %w", w.seg, err)
	}
	return nil
}

// Close seals the writer (idempotent).
func (w *Writer) Close() error { return w.Seal() }

// FDSource supplies open segment file descriptors by file number. It is
// implemented by cache.FDCache, giving the reader the same sharded,
// singleflight-deduplicated descriptor discipline the table cache uses.
type FDSource interface {
	With(num uint64, fn func(vfs.File) error) error
}

// Reader dereferences pointers through a descriptor source.
type Reader struct {
	src FDSource //boltvet:guardedby none -- immutable; FDCache is internally synchronized
}

// NewReader returns a reader over src.
func NewReader(src FDSource) *Reader { return &Reader{src: src} }

// Get reads the record at p and returns its value (a sub-slice of a fresh
// buffer; the caller owns it). Checksum mismatches return ErrCorrupt.
func (r *Reader) Get(p Pointer) (value []byte, err error) {
	err = r.src.With(p.Seg, func(f vfs.File) error {
		_, value, err = ReadRecord(f, p)
		return err
	})
	return value, err
}

// ReadRecord reads and verifies the record at p from f, returning its key
// and value (sub-slices of one freshly allocated buffer). A checksum
// mismatch — including a pointer into a punched range — returns ErrCorrupt.
func ReadRecord(f vfs.File, p Pointer) (key, value []byte, err error) {
	if p.Len < HeaderSize+1 {
		return nil, nil, fmt.Errorf("%w: segment %d offset %d: implausible length %d",
			ErrCorrupt, p.Seg, p.Off, p.Len)
	}
	buf := make([]byte, p.Len)
	if err := vfs.ReadFull(f, buf, p.Off); err != nil {
		return nil, nil, fmt.Errorf("vlog: read segment %d @%d+%d: %w", p.Seg, p.Off, p.Len, err)
	}
	hdr, payload := buf[:HeaderSize], buf[HeaderSize:]
	plen, ok := parseHeader(hdr)
	if !ok || plen != int64(len(payload)) || !payloadOK(hdr, payload) {
		return nil, nil, fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, p.Seg, p.Off)
	}
	return parsePayload(payload)
}

// WalkRecord describes one record visited by Walk.
type WalkRecord struct {
	Off int64
	Len int64 // total on-disk length, header included
	// PayloadOK distinguishes an intact record from one whose payload
	// range was reclaimed (punched) or rotted; Key/Value are nil when
	// false.
	PayloadOK bool
	Key       []byte
	Value     []byte
}

// Walk scans the segment from offset `from` to `size`, invoking fn for
// each record whose header parses. It stops cleanly at the first invalid
// header (a torn tail) and returns the offset it reached — the segment's
// valid length. Records whose header is intact but whose payload fails its
// CRC (punched or rotted payloads) are still visited, with PayloadOK
// false, and do not stop the walk.
func Walk(f vfs.File, from, size int64, fn func(WalkRecord) error) (valid int64, err error) {
	off := from
	var buf []byte
	for off+HeaderSize <= size {
		var hdr [HeaderSize]byte
		if err := vfs.ReadFull(f, hdr[:], off); err != nil {
			return off, nil
		}
		plen, ok := parseHeader(hdr[:])
		if !ok || plen < 1 || off+HeaderSize+plen > size {
			return off, nil
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		payload := buf[:plen]
		if err := vfs.ReadFull(f, payload, off+HeaderSize); err != nil {
			return off, nil
		}
		rec := WalkRecord{Off: off, Len: HeaderSize + plen}
		if payloadOK(hdr[:], payload) {
			key, value, perr := parsePayload(payload)
			if perr == nil {
				rec.PayloadOK = true
				rec.Key, rec.Value = key, value
			}
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += rec.Len
	}
	return off, nil
}

// ValidLength returns the byte length of the segment's parseable record
// prefix starting at `from` (recovery uses it to bound pointer validation
// past the last durably recorded size).
func ValidLength(f vfs.File, from, size int64) int64 {
	valid, _ := Walk(f, from, size, nil)
	return valid
}
