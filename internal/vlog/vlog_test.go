package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

func TestPointerCodec(t *testing.T) {
	cases := []Pointer{
		{},
		{Seg: 1, Off: 0, Len: 13},
		{Seg: 1<<40 + 7, Off: 1<<33 + 5, Len: 1 << 20},
	}
	for _, want := range cases {
		enc := want.Encode(nil)
		got, err := DecodePointer(enc)
		if err != nil {
			t.Fatalf("DecodePointer(%v): %v", want, err)
		}
		if got != want {
			t.Fatalf("roundtrip: got %v want %v", got, want)
		}
	}
	if _, err := DecodePointer(nil); err == nil {
		t.Fatal("DecodePointer(nil) succeeded")
	}
	if _, err := DecodePointer([]byte{0x80}); err == nil {
		t.Fatal("DecodePointer(truncated varint) succeeded")
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	w, err := NewWriter(fs, "000007.vlog", 7)
	if err != nil {
		t.Fatal(err)
	}
	type kv struct{ k, v string }
	items := []kv{
		{"alpha", "first-value"},
		{"beta", string(bytes.Repeat([]byte("x"), 4096))},
		{"gamma", ""},
	}
	var ptrs []Pointer
	for _, it := range items {
		p, err := w.Append([]byte(it.k), []byte(it.v))
		if err != nil {
			t.Fatal(err)
		}
		if want := EncodedLen(len(it.k), len(it.v)); p.Len != want {
			t.Fatalf("pointer length %d, EncodedLen %d", p.Len, want)
		}
		ptrs = append(ptrs, p)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncedSize() != w.Size() {
		t.Fatalf("synced %d != size %d after Sync", w.SyncedSize(), w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("k"), []byte("v")); err == nil {
		t.Fatal("append after seal succeeded")
	}

	f, err := fs.Open("000007.vlog")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, p := range ptrs {
		key, value, err := ReadRecord(f, p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(key) != items[i].k || string(value) != items[i].v {
			t.Fatalf("record %d: got (%q, %d value bytes)", i, key, len(value))
		}
	}

	// A pointer into the middle of a record must fail the checksum, not
	// return garbage.
	bad := ptrs[1]
	bad.Off += 2
	if _, _, err := ReadRecord(f, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misaligned pointer: got %v, want ErrCorrupt", err)
	}
}

func writeSegment(t *testing.T, fs vfs.FS, name string, seg uint64, n int) []Pointer {
	t.Helper()
	w, err := NewWriter(fs, name, seg)
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []Pointer
	for i := 0; i < n; i++ {
		p, err := w.Append(fmt.Appendf(nil, "key-%03d", i), bytes.Repeat([]byte{byte(i)}, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ptrs
}

func TestWalkTornTail(t *testing.T) {
	fs := vfs.NewMem()
	ptrs := writeSegment(t, fs, "000001.vlog", 1, 5)
	f, err := fs.Open("000001.vlog")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := f.Size()

	// Destroy the last record's header (zeroed bytes fail the header CRC):
	// the walk must stop exactly at its start and report everything before
	// it valid.
	last := ptrs[len(ptrs)-1]
	if err := f.PunchHole(last.Off, HeaderSize); err != nil {
		t.Fatal(err)
	}
	var seen int
	valid, err := Walk(f, 0, size, func(rec WalkRecord) error {
		if !rec.PayloadOK {
			t.Fatalf("record @%d: payload unexpectedly bad", rec.Off)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != last.Off || seen != len(ptrs)-1 {
		t.Fatalf("walk after torn header: valid=%d seen=%d, want valid=%d seen=%d",
			valid, seen, last.Off, len(ptrs)-1)
	}
	if got := ValidLength(f, 0, size); got != last.Off {
		t.Fatalf("ValidLength=%d want %d", got, last.Off)
	}
}

func TestWalkTraversesPunchedPayload(t *testing.T) {
	fs := vfs.NewMem()
	ptrs := writeSegment(t, fs, "000002.vlog", 2, 4)
	f, err := fs.Open("000002.vlog")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := f.Size()

	// Punch record 1's payload (as GC does): header intact, payload zeroed.
	victim := ptrs[1]
	if err := f.PunchHole(victim.Off+HeaderSize, victim.Len-HeaderSize); err != nil {
		t.Fatal(err)
	}

	var bad, good int
	valid, err := Walk(f, 0, size, func(rec WalkRecord) error {
		if rec.PayloadOK {
			good++
		} else {
			bad++
			if rec.Off != victim.Off {
				t.Fatalf("bad payload at %d, punched %d", rec.Off, victim.Off)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != size {
		t.Fatalf("walk over punched payload stopped at %d of %d", valid, size)
	}
	if good != 3 || bad != 1 {
		t.Fatalf("good=%d bad=%d, want 3/1", good, bad)
	}

	// Dereferencing the punched record reports corruption.
	if _, _, err := ReadRecord(f, victim); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("punched read: got %v, want ErrCorrupt", err)
	}
	// Its neighbours still read fine.
	if _, _, err := ReadRecord(f, ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadRecord(f, ptrs[2]); err != nil {
		t.Fatal(err)
	}
}

func TestWalkCallbackError(t *testing.T) {
	fs := vfs.NewMem()
	writeSegment(t, fs, "000003.vlog", 3, 3)
	f, err := fs.Open("000003.vlog")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := f.Size()
	sentinel := errors.New("stop")
	n := 0
	_, err = Walk(f, 0, size, func(WalkRecord) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 2 {
		t.Fatalf("err=%v n=%d, want sentinel at 2", err, n)
	}
}

func TestSealFailedSyncKeepsSyncedSize(t *testing.T) {
	fs := vfs.NewMem()
	w, err := NewWriter(fs, "000004.vlog", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := w.SyncedSize()
	if _, err := w.Append([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// SyncedSize must not include unsynced appends.
	if w.SyncedSize() != durable {
		t.Fatalf("SyncedSize %d grew without Sync (durable %d)", w.SyncedSize(), durable)
	}
}
