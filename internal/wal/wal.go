// Package wal implements the write-ahead log. Each committed write batch is
// one log record (see internal/logrec); group commit concatenates several
// user batches into one record before a single append and optional sync.
// Recovery replays all intact records and tolerates a torn tail.
package wal

import (
	"errors"
	"fmt"
	"io"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/logrec"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// Writer appends batches to a log file. It is not self-locking: the
// engine serializes all calls — appends through the group-commit leader
// (which owns the writer for its off-mu append window) and Close through
// the post-drain teardown.
//
//boltvet:mustclose
type Writer struct {
	f      vfs.File       //boltvet:guardedby none -- externally serialized by the engine (see type doc)
	lw     *logrec.Writer //boltvet:guardedby none -- externally serialized by the engine (see type doc)
	closed bool           //boltvet:guardedby none -- externally serialized by the engine (see type doc)
}

// NewWriter creates the log file `name` in fs.
func NewWriter(fs vfs.FS, name string) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("wal: create %q: %w", name, err)
	}
	return &Writer{f: f, lw: logrec.NewWriter(f)}, nil
}

// AddRecord appends one record (a batch representation).
func (w *Writer) AddRecord(data []byte) error {
	if w.closed {
		return errors.New("wal: writer closed")
	}
	return w.lw.WriteRecord(data)
}

// Sync makes appended records durable.
func (w *Writer) Sync() error {
	if w.closed {
		return errors.New("wal: writer closed")
	}
	return w.f.Sync()
}

// Close closes the underlying file without syncing.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Replay reads the log file `name` and invokes fn for every intact batch,
// in order. A torn or corrupt tail ends replay cleanly. The returned
// maxSeq is the highest sequence number applied (0 if none).
func Replay(fs vfs.FS, name string, fn func(b *batch.Batch) error) (maxSeq uint64, err error) {
	data, err := vfs.ReadWholeFile(fs, name)
	if err != nil {
		return 0, fmt.Errorf("wal: read %q: %w", name, err)
	}
	r := logrec.NewReader(data)
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return maxSeq, nil
		}
		if err != nil {
			return maxSeq, fmt.Errorf("wal: replay %q: %w", name, err)
		}
		b, err := batch.FromRepr(rec)
		if err != nil {
			// A decoded-but-malformed record means real corruption beyond a
			// torn tail; stop replay here, matching LevelDB's paranoid mode
			// being off.
			return maxSeq, nil
		}
		if err := fn(b); err != nil {
			return maxSeq, err
		}
		if n := b.Count(); n > 0 {
			last := uint64(b.Seq()) + uint64(n) - 1
			if last > maxSeq {
				maxSeq = last
			}
		}
	}
}
