package wal

import (
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func TestWriteReplay(t *testing.T) {
	fs := vfs.NewMem()
	w, err := NewWriter(fs, "000001.log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b := batch.New()
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
		b.SetSeq(keys.Seq(i*10 + 1))
		if err := w.AddRecord(b.Repr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var got []string
	maxSeq, err := Replay(fs, "000001.log", func(b *batch.Batch) error {
		return b.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
			got = append(got, fmt.Sprintf("%d:%s=%s", seq, key, value))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d ops", len(got))
	}
	if got[0] != "1:k0=v0" || got[9] != "91:k9=v9" {
		t.Fatalf("ops = %v", got)
	}
	if maxSeq != 91 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}
}

func TestReplayTornTailAfterCrash(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "log")
	b := batch.New()
	b.Put([]byte("durable"), []byte("1"))
	b.SetSeq(1)
	w.AddRecord(b.Repr())
	w.Sync()
	fs.SyncDir()

	// A second record is appended but never synced.
	b2 := batch.New()
	b2.Put([]byte("volatile"), []byte("2"))
	b2.SetSeq(2)
	w.AddRecord(b2.Repr())

	crashed := fs.CrashClone()
	var seen []string
	maxSeq, err := Replay(crashed, "log", func(b *batch.Batch) error {
		return b.Iterate(func(_ keys.Seq, _ keys.Kind, key, _ []byte) error {
			seen = append(seen, string(key))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "durable" {
		t.Fatalf("seen = %v", seen)
	}
	if maxSeq != 1 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}
}

func TestReplayEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "log")
	w.Close()
	n := 0
	maxSeq, err := Replay(fs, "log", func(*batch.Batch) error { n++; return nil })
	if err != nil || n != 0 || maxSeq != 0 {
		t.Fatalf("n=%d maxSeq=%d err=%v", n, maxSeq, err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	fs := vfs.NewMem()
	if _, err := Replay(fs, "nope", func(*batch.Batch) error { return nil }); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestGroupCommitRecord(t *testing.T) {
	// Group commit concatenates batches; replay must see all operations
	// with consecutive sequence numbers.
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "log")
	group := batch.New()
	for i := 0; i < 5; i++ {
		b := batch.New()
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		group.Append(b)
	}
	group.SetSeq(100)
	w.AddRecord(group.Repr())
	w.Sync()
	w.Close()

	var seqs []keys.Seq
	_, err := Replay(fs, "log", func(b *batch.Batch) error {
		return b.Iterate(func(seq keys.Seq, _ keys.Kind, _, _ []byte) error {
			seqs = append(seqs, seq)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []keys.Seq{100, 101, 102, 103, 104}
	if fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("seqs = %v", seqs)
	}
}
