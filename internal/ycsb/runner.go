package ycsb

import (
	"fmt"
	"sync"
	"time"

	"github.com/bolt-lsm/bolt/internal/histogram"
)

// KV is the store interface the runner drives. Get reports found=false for
// absent keys (not an error: YCSB's read-latest may race its inserts).
type KV interface {
	Put(key, value []byte) error
	Get(key []byte) (found bool, err error)
	Scan(start []byte, maxLen int) (scanned int, err error)
}

// RunConfig parameterizes one workload execution.
type RunConfig struct {
	// Workload and Distribution select the stream.
	Workload     Workload
	Distribution Distribution
	// RecordCount is the number of records already loaded (0 for loads).
	RecordCount int64
	// Ops is the total operation count across all threads.
	Ops int64
	// Threads is the client thread count (the paper uses 4).
	Threads int
	// ValueSize is the payload size (exact for FixedSize, the maximum for
	// the variable distributions).
	ValueSize int
	// ValueSizeDist selects how per-write value lengths are drawn.
	ValueSizeDist ValueSizeDist
	// Seed makes the run deterministic.
	Seed int64
	// Interrupt, when non-nil, aborts the run early once it becomes
	// readable (conventionally by being closed): each thread finishes its
	// current operation and returns. The Result then reports
	// Interrupted=true and counts only the operations actually executed.
	Interrupt <-chan struct{}
}

// Result summarizes one workload execution.
type Result struct {
	Workload     Workload
	Distribution Distribution
	Ops          int64
	Duration     time.Duration
	// Throughput in operations/second.
	Throughput float64
	// Latency histograms by operation class, plus combined.
	Read, Write, Scan, Overall *histogram.Histogram
	// InsertedRecords is how many new records inserts added (so callers
	// can carry RecordCount forward through the YCSB sequence).
	InsertedRecords int64
	// Interrupted reports that RunConfig.Interrupt cut the run short; Ops
	// then holds the executed count, not the configured one.
	Interrupted bool
	// executed counts operations the threads actually completed.
	executed int64
}

// Run executes the workload against kv.
func Run(kv KV, cfg RunConfig) (*Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("ycsb: zero ops")
	}
	res := &Result{
		Workload:     cfg.Workload,
		Distribution: cfg.Distribution,
		Ops:          cfg.Ops,
		Read:         &histogram.Histogram{},
		Write:        &histogram.Histogram{},
		Scan:         &histogram.Histogram{},
		Overall:      &histogram.Histogram{},
	}
	perThread := cfg.Ops / int64(cfg.Threads)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Threads)
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		ops := perThread
		if t == cfg.Threads-1 {
			ops += cfg.Ops % int64(cfg.Threads) // remainder to the last thread
		}
		gen := NewGenerator(GeneratorConfig{
			Workload:      cfg.Workload,
			Distribution:  cfg.Distribution,
			RecordCount:   cfg.RecordCount,
			InsertStart:   cfg.RecordCount + int64(t)*perThread,
			ValueSize:     cfg.ValueSize,
			ValueSizeDist: cfg.ValueSizeDist,
			Seed:          cfg.Seed + int64(t)*7919,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runThread(kv, gen, ops, cfg.Interrupt, res); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	if res.Interrupted {
		res.Ops = res.executed
	}
	res.Throughput = float64(res.Ops) / res.Duration.Seconds()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return res, nil
}

func runThread(kv KV, gen *Generator, ops int64, interrupt <-chan struct{}, res *Result) error {
	var inserted, executed int64
	interrupted := false
	defer func() { addThread(res, inserted, executed, interrupted) }()
	for i := int64(0); i < ops; i++ {
		// A nil interrupt channel blocks forever, so the default case
		// always runs and uninterruptible configs pay one failed poll.
		select {
		case <-interrupt:
			interrupted = true
			return nil
		default:
		}
		op := gen.Next()
		opStart := time.Now()
		var err error
		switch op.Kind {
		case OpRead:
			_, err = kv.Get(op.Key)
		case OpUpdate, OpInsert:
			err = kv.Put(op.Key, op.Value)
			if op.Kind == OpInsert {
				inserted++
			}
		case OpScan:
			_, err = kv.Scan(op.Key, op.ScanLen)
		case OpReadModifyWrite:
			if _, err = kv.Get(op.Key); err == nil {
				err = kv.Put(op.Key, op.Value)
			}
		}
		elapsed := time.Since(opStart)
		if err != nil {
			return fmt.Errorf("ycsb: %s %q: %w", op.Kind, op.Key, err)
		}
		executed++
		res.Overall.Record(elapsed)
		switch op.Kind {
		case OpRead:
			res.Read.Record(elapsed)
		case OpUpdate, OpInsert, OpReadModifyWrite:
			res.Write.Record(elapsed)
		case OpScan:
			res.Scan.Record(elapsed)
		}
	}
	return nil
}

var resultMu sync.Mutex

// addThread folds one thread's tallies into the shared result.
func addThread(res *Result, inserted, executed int64, interrupted bool) {
	resultMu.Lock()
	res.InsertedRecords += inserted
	res.executed += executed
	if interrupted {
		res.Interrupted = true
	}
	resultMu.Unlock()
}

// Sequence returns the paper's recommended workload submission order:
// LA, A, B, C, F, D, then (fresh database) LE, E.
func Sequence() [][]Workload {
	return [][]Workload{
		{LoadA, WorkloadA, WorkloadB, WorkloadC, WorkloadF, WorkloadD},
		{LoadE, WorkloadE},
	}
}
