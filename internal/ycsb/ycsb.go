// Package ycsb implements the YCSB workload generator and runner used by
// the paper's evaluation: Load A / Load E bulk loads plus workloads A–F,
// with scrambled-zipfian (Ξ=0.99), uniform, and latest request
// distributions, 23-byte keys ("user" + 19 digits, as the paper measures),
// and configurable value sizes.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// OpKind is the type of one generated operation.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Workload identifies one of the paper's YCSB workloads.
type Workload int

// The workloads, in the paper's submission order: LA, A, B, C, F, D,
// (delete database), LE, E.
const (
	LoadA     Workload = iota + 1 // 100% insert
	WorkloadA                     // 50% read / 50% update, zipfian
	WorkloadB                     // 95% read / 5% update, zipfian
	WorkloadC                     // 100% read, zipfian
	WorkloadD                     // 95% read-latest / 5% insert
	WorkloadE                     // 95% scan / 5% insert
	WorkloadF                     // 50% read / 50% read-modify-write
	LoadE                         // 100% insert (fresh DB for E)
)

// String names the workload as the paper does.
func (w Workload) String() string {
	switch w {
	case LoadA:
		return "LA"
	case WorkloadA:
		return "A"
	case WorkloadB:
		return "B"
	case WorkloadC:
		return "C"
	case WorkloadD:
		return "D"
	case WorkloadE:
		return "E"
	case WorkloadF:
		return "F"
	case LoadE:
		return "LE"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// IsLoad reports whether the workload is a bulk load phase.
func (w Workload) IsLoad() bool { return w == LoadA || w == LoadE }

// Distribution selects how request keys are drawn.
type Distribution int

// Request distributions.
const (
	Zipfian Distribution = iota + 1
	Uniform
	Latest
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Zipfian:
		return "zipfian"
	case Uniform:
		return "uniform"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ValueSizeDist selects how per-operation value sizes are drawn. The zero
// value (FixedSize) preserves the original fixed-length behaviour.
type ValueSizeDist int

// Value size distributions. UniformSize and ZipfSize draw a fresh length
// in [1, ValueSize] per write; ZipfSize is YCSB's "zipfian" field-length
// distribution, where short lengths are the most popular and lengths near
// the maximum form the tail — the shape that exercises a key-value
// separation threshold from both sides.
const (
	FixedSize ValueSizeDist = iota
	UniformSize
	ZipfSize
)

// String names the distribution.
func (d ValueSizeDist) String() string {
	switch d {
	case FixedSize:
		return "fixed"
	case UniformSize:
		return "uniform"
	case ZipfSize:
		return "zipf"
	default:
		return fmt.Sprintf("ValueSizeDist(%d)", int(d))
	}
}

// Key returns the YCSB key for record index i: "user" plus 19 digits of a
// scrambled counter — 23 bytes, matching the paper's key size.
func Key(i int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	h := fnv.New64a()
	h.Write(b[:])
	return []byte(fmt.Sprintf("user%019d", h.Sum64()%1e19))
}

// zipf implements YCSB's ZipfianGenerator (Gray et al.): draws ranks in
// [0, n) with parameter theta, rank 0 most popular, supporting a growing
// item count without re-deriving the full distribution.
type zipf struct {
	rng   *rand.Rand
	n     int64
	theta float64

	alpha, zetan, eta, zeta2 float64
}

const zipfTheta = 0.99

func newZipf(rng *rand.Rand, n int64) *zipf {
	z := &zipf{rng: rng, theta: zipfTheta}
	z.grow(n)
	return z
}

// zetaStatic computes the zeta sum incrementally from a known prefix.
func zetaStatic(sum float64, from, to int64, theta float64) float64 {
	for i := from; i < to; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

func (z *zipf) grow(n int64) {
	if n <= z.n {
		return
	}
	z.zetan = zetaStatic(z.zetan, z.n, n, z.theta)
	z.n = n
	z.zeta2 = zetaStatic(0, 0, 2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

func (z *zipf) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Generator produces one client's operation stream. Generators are not
// safe for concurrent use; the Runner gives each client thread its own.
type Generator struct {
	workload Workload
	dist     Distribution
	rng      *rand.Rand
	zipf     *zipf

	// recordCount is the number of loaded records; insertSeq allocates new
	// record indexes for insert operations (shared monotonic counter would
	// be needed for exact YCSB semantics across threads; per-thread
	// striping keeps determinism instead).
	recordCount int64
	insertSeq   int64
	valueSize   int
	sizeDist    ValueSizeDist
	sizeZipf    *zipf
	scanMaxLen  int
	valueBuf    []byte
}

// GeneratorConfig parameterizes NewGenerator.
type GeneratorConfig struct {
	// Workload selects the operation mix.
	Workload Workload
	// Distribution selects the request distribution (ignored for loads
	// and for D, which always reads latest).
	Distribution Distribution
	// RecordCount is the number of records loaded before the run.
	RecordCount int64
	// InsertStart is the first record index this generator may insert
	// (stripe the space across threads).
	InsertStart int64
	// ValueSize is the value payload length (the paper uses 1 KB and
	// 100 B) — the exact length for FixedSize, the maximum otherwise.
	ValueSize int
	// ValueSizeDist selects how per-write value lengths are drawn (default
	// FixedSize).
	ValueSizeDist ValueSizeDist
	// ScanMaxLen bounds scan lengths (default 100, YCSB's default).
	ScanMaxLen int
	// Seed makes the stream deterministic.
	Seed int64
}

// Op is one generated operation. Value aliases an internal buffer and must
// be consumed before the next call.
type Op struct {
	Kind    OpKind
	Key     []byte
	Value   []byte
	ScanLen int
}

// NewGenerator returns a generator for one client thread.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.ScanMaxLen <= 0 {
		cfg.ScanMaxLen = 100
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	if cfg.Distribution == 0 {
		cfg.Distribution = Zipfian
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		workload:    cfg.Workload,
		dist:        cfg.Distribution,
		rng:         rng,
		recordCount: cfg.RecordCount,
		insertSeq:   cfg.InsertStart,
		valueSize:   cfg.ValueSize,
		sizeDist:    cfg.ValueSizeDist,
		scanMaxLen:  cfg.ScanMaxLen,
		valueBuf:    make([]byte, cfg.ValueSize),
	}
	if cfg.RecordCount > 0 {
		g.zipf = newZipf(rand.New(rand.NewSource(cfg.Seed+1)), cfg.RecordCount)
	}
	if cfg.ValueSizeDist == ZipfSize {
		g.sizeZipf = newZipf(rand.New(rand.NewSource(cfg.Seed+2)), int64(cfg.ValueSize))
	}
	return g
}

// value draws this write's length from the configured size distribution
// and fills that prefix of the value buffer with cheap pseudo-random
// bytes.
func (g *Generator) value() []byte {
	n := g.valueSize
	switch g.sizeDist {
	case UniformSize:
		n = 1 + g.rng.Intn(g.valueSize)
	case ZipfSize:
		n = 1 + int(g.sizeZipf.next())
	}
	buf := g.valueBuf[:n]
	// Fill 8 bytes at a time; compressibility does not matter (the paper
	// disables compression).
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], g.rng.Uint64())
	}
	return buf
}

// chooseKey draws a request key index.
func (g *Generator) chooseKey() int64 {
	switch g.dist {
	case Uniform:
		return g.rng.Int63n(g.recordCount)
	case Latest:
		r := g.zipf.next()
		k := g.recordCount - 1 - r
		if k < 0 {
			k = 0
		}
		return k
	default: // Zipfian, scrambled as in YCSB
		r := g.zipf.next()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(r))
		h := fnv.New64a()
		h.Write(b[:])
		return int64(h.Sum64() % uint64(g.recordCount))
	}
}

// insertKey allocates a fresh record index and grows the request space.
func (g *Generator) insertKey() int64 {
	k := g.insertSeq
	g.insertSeq++
	g.recordCount++
	if g.zipf != nil {
		g.zipf.grow(g.recordCount)
	}
	return k
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	switch g.workload {
	case LoadA, LoadE:
		return Op{Kind: OpInsert, Key: Key(g.insertKey()), Value: g.value()}
	case WorkloadA:
		if g.rng.Intn(100) < 50 {
			return Op{Kind: OpRead, Key: Key(g.chooseKey())}
		}
		return Op{Kind: OpUpdate, Key: Key(g.chooseKey()), Value: g.value()}
	case WorkloadB:
		if g.rng.Intn(100) < 95 {
			return Op{Kind: OpRead, Key: Key(g.chooseKey())}
		}
		return Op{Kind: OpUpdate, Key: Key(g.chooseKey()), Value: g.value()}
	case WorkloadC:
		return Op{Kind: OpRead, Key: Key(g.chooseKey())}
	case WorkloadD:
		if g.rng.Intn(100) < 95 {
			// Read-latest: force the latest distribution regardless of the
			// configured one, per YCSB.
			r := g.zipf.next()
			k := g.recordCount - 1 - r
			if k < 0 {
				k = 0
			}
			return Op{Kind: OpRead, Key: Key(k)}
		}
		return Op{Kind: OpInsert, Key: Key(g.insertKey()), Value: g.value()}
	case WorkloadE:
		if g.rng.Intn(100) < 95 {
			return Op{
				Kind:    OpScan,
				Key:     Key(g.chooseKey()),
				ScanLen: 1 + g.rng.Intn(g.scanMaxLen),
			}
		}
		return Op{Kind: OpInsert, Key: Key(g.insertKey()), Value: g.value()}
	case WorkloadF:
		if g.rng.Intn(100) < 50 {
			return Op{Kind: OpRead, Key: Key(g.chooseKey())}
		}
		return Op{Kind: OpReadModifyWrite, Key: Key(g.chooseKey()), Value: g.value()}
	default:
		return Op{Kind: OpRead, Key: Key(0)}
	}
}
