package ycsb

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyFormat(t *testing.T) {
	for _, i := range []int64{0, 1, 42, 1 << 40} {
		k := Key(i)
		if len(k) != 23 {
			t.Fatalf("Key(%d) = %q, len %d want 23", i, k, len(k))
		}
		if string(k[:4]) != "user" {
			t.Fatalf("Key(%d) = %q", i, k)
		}
	}
	// Deterministic and (practically) collision-free over a small range.
	seen := map[string]bool{}
	for i := int64(0); i < 100000; i++ {
		k := string(Key(i))
		if seen[k] {
			t.Fatalf("key collision at %d", i)
		}
		seen[k] = true
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Workload: WorkloadC, RecordCount: 1000, Seed: 1})
	counts := map[string]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		op := g.Next()
		counts[string(op.Key)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipfian: the hottest key should be drawn far more than 1/n of the time.
	if max < draws/100 {
		t.Fatalf("no skew: max count %d of %d draws over 1000 keys", max, draws)
	}
	if len(counts) < 300 {
		t.Fatalf("coverage too small: %d distinct keys", len(counts))
	}
}

func TestValueSizeDistributions(t *testing.T) {
	const maxSize = 4096
	gen := func(d ValueSizeDist) *Generator {
		return NewGenerator(GeneratorConfig{
			Workload: LoadA, ValueSize: maxSize, ValueSizeDist: d, Seed: 3,
		})
	}

	g := gen(FixedSize)
	for i := 0; i < 100; i++ {
		if n := len(g.Next().Value); n != maxSize {
			t.Fatalf("fixed: value %d has %d bytes, want %d", i, n, maxSize)
		}
	}

	for _, d := range []ValueSizeDist{UniformSize, ZipfSize} {
		g := gen(d)
		var sum, draws int64
		distinct := map[int]bool{}
		for i := 0; i < 5000; i++ {
			n := len(g.Next().Value)
			if n < 1 || n > maxSize {
				t.Fatalf("%s: value length %d outside [1, %d]", d, n, maxSize)
			}
			sum += int64(n)
			draws++
			distinct[n] = true
		}
		if len(distinct) < 50 {
			t.Fatalf("%s: only %d distinct lengths over %d draws", d, len(distinct), draws)
		}
		mean := sum / draws
		if d == UniformSize && (mean < maxSize/3 || mean > 2*maxSize/3) {
			t.Fatalf("uniform: mean length %d, want near %d", mean, maxSize/2)
		}
		// YCSB's zipfian field lengths favour short values heavily.
		if d == ZipfSize && mean > maxSize/4 {
			t.Fatalf("zipf: mean length %d shows no skew toward short values", mean)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Workload: WorkloadC, Distribution: Uniform, RecordCount: 1000, Seed: 2})
	counts := map[string]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[string(g.Next().Key)]++
	}
	if len(counts) < 990 {
		t.Fatalf("uniform should touch nearly all keys: %d", len(counts))
	}
	for k, c := range counts {
		if c > draws/100 {
			t.Fatalf("uniform key %s drawn %d times", k, c)
		}
	}
}

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		w          Workload
		wantKinds  map[OpKind]bool
		domKind    OpKind
		domAtLeast float64
	}{
		{LoadA, map[OpKind]bool{OpInsert: true}, OpInsert, 1.0},
		{WorkloadA, map[OpKind]bool{OpRead: true, OpUpdate: true}, OpRead, 0.40},
		{WorkloadB, map[OpKind]bool{OpRead: true, OpUpdate: true}, OpRead, 0.90},
		{WorkloadC, map[OpKind]bool{OpRead: true}, OpRead, 1.0},
		{WorkloadD, map[OpKind]bool{OpRead: true, OpInsert: true}, OpRead, 0.90},
		{WorkloadE, map[OpKind]bool{OpScan: true, OpInsert: true}, OpScan, 0.90},
		{WorkloadF, map[OpKind]bool{OpRead: true, OpReadModifyWrite: true}, OpRead, 0.40},
	}
	for _, tc := range cases {
		t.Run(tc.w.String(), func(t *testing.T) {
			g := NewGenerator(GeneratorConfig{Workload: tc.w, RecordCount: 1000, InsertStart: 1000, Seed: 5})
			counts := map[OpKind]int{}
			const n = 20000
			for i := 0; i < n; i++ {
				op := g.Next()
				counts[op.Kind]++
				if !tc.wantKinds[op.Kind] {
					t.Fatalf("unexpected op kind %v", op.Kind)
				}
				if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
					t.Fatalf("scan len %d out of range", op.ScanLen)
				}
				if (op.Kind == OpInsert || op.Kind == OpUpdate || op.Kind == OpReadModifyWrite) && len(op.Value) == 0 {
					t.Fatalf("%v without value", op.Kind)
				}
			}
			if frac := float64(counts[tc.domKind]) / n; frac < tc.domAtLeast {
				t.Fatalf("dominant kind %v fraction %.3f < %.3f (%v)", tc.domKind, frac, tc.domAtLeast, counts)
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []string {
		g := NewGenerator(GeneratorConfig{Workload: WorkloadA, RecordCount: 500, Seed: 9})
		var out []string
		for i := 0; i < 100; i++ {
			op := g.Next()
			out = append(out, fmt.Sprintf("%v:%s", op.Kind, op.Key))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// mapKV is a trivial in-memory KV for runner tests.
type mapKV struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (kv *mapKV) Put(key, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.m == nil {
		kv.m = map[string][]byte{}
	}
	kv.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (kv *mapKV) Get(key []byte) (bool, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	_, ok := kv.m[string(key)]
	return ok, nil
}

func (kv *mapKV) Scan(start []byte, maxLen int) (int, error) {
	return maxLen, nil
}

func TestRunnerLoadThenRead(t *testing.T) {
	kv := &mapKV{}
	load, err := Run(kv, RunConfig{Workload: LoadA, Ops: 4000, Threads: 4, ValueSize: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if load.InsertedRecords != 4000 {
		t.Fatalf("inserted %d", load.InsertedRecords)
	}
	if len(kv.m) != 4000 {
		t.Fatalf("store has %d records", len(kv.m))
	}
	if load.Write.Count() != 4000 || load.Overall.Count() != 4000 {
		t.Fatalf("histograms: write=%d overall=%d", load.Write.Count(), load.Overall.Count())
	}
	if load.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}

	// Reads against the loaded records must all hit.
	reads, err := Run(kv, RunConfig{Workload: WorkloadC, RecordCount: 4000, Ops: 2000, Threads: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reads.Read.Count() != 2000 {
		t.Fatalf("read count %d", reads.Read.Count())
	}
}

func TestRunnerReadsHitLoadedKeys(t *testing.T) {
	// Every key chosen by the request distribution must exist after load
	// (index -> Key mapping consistency).
	kv := &mapKV{}
	if _, err := Run(kv, RunConfig{Workload: LoadA, Ops: 1000, Threads: 2, ValueSize: 16, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(GeneratorConfig{Workload: WorkloadC, RecordCount: 1000, Seed: 4})
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if _, ok := kv.m[string(op.Key)]; !ok {
			t.Fatalf("request for unloaded key %q", op.Key)
		}
	}
}

func TestRunnerWorkloadFRecordsBothOps(t *testing.T) {
	kv := &mapKV{}
	Run(kv, RunConfig{Workload: LoadA, Ops: 500, Threads: 1, ValueSize: 16, Seed: 5})
	res, err := Run(kv, RunConfig{Workload: WorkloadF, RecordCount: 500, Ops: 1000, Threads: 2, ValueSize: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Read.Count() == 0 || res.Write.Count() == 0 {
		t.Fatalf("F mix: read=%d write=%d", res.Read.Count(), res.Write.Count())
	}
	if res.Read.Count()+res.Write.Count() != res.Overall.Count() {
		t.Fatalf("histogram accounting off")
	}
}

func TestSequenceShape(t *testing.T) {
	seq := Sequence()
	if len(seq) != 2 || seq[0][0] != LoadA || seq[1][0] != LoadE {
		t.Fatalf("sequence = %v", seq)
	}
}

func TestLatestDistributionPrefersRecent(t *testing.T) {
	const records = 10000
	g := NewGenerator(GeneratorConfig{
		Workload: WorkloadC, Distribution: Latest, RecordCount: records, Seed: 8,
	})
	// The newest records' keys must dominate the stream.
	recentKeys := map[string]bool{}
	for i := records - 100; i < records; i++ {
		recentKeys[string(Key(int64(i)))] = true
	}
	recent := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if recentKeys[string(g.Next().Key)] {
			recent++
		}
	}
	// 100 of 10000 keys are "recent" (1%); latest skew should push their
	// share far above that.
	if float64(recent)/draws < 0.30 {
		t.Fatalf("latest distribution too flat: %d/%d recent", recent, draws)
	}
}

func TestWorkloadDReadsFindInsertedKeys(t *testing.T) {
	// In workload D, read-latest targets indexes below the generator's own
	// insert cursor, so reads hit keys that exist (modulo cross-thread
	// striping races, absent in a single-threaded generator).
	kv := &mapKV{}
	if _, err := Run(kv, RunConfig{Workload: LoadA, Ops: 1000, Threads: 1, ValueSize: 16, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(GeneratorConfig{Workload: WorkloadD, RecordCount: 1000, InsertStart: 1000, ValueSize: 16, Seed: 12})
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			kv.Put(op.Key, op.Value)
			continue
		}
		if _, ok := kv.m[string(op.Key)]; !ok {
			t.Fatalf("workload D read of absent key %q at op %d", op.Key, i)
		}
	}
}
